let log_src = Logs.Src.create "serve.session" ~doc:"Concurrent SMTP sessions"

module Log = (val Logs.src_log log_src)

type outcome =
  [ `Delivered of int | `Transient of string | `Permanent of string ]

(* One session delivers one envelope over an explicit phase sequence —
   connect (220 banner), HELO, MAIL FROM, one RCPT TO per recipient,
   DATA, then the body and its terminating dot — with one round trip
   drawn per phase, so many sessions interleave on the engine while
   each occupies its dispatch slot for the whole dialogue.

   The dialogue itself is the real one: the same [Client.transport]
   driving the same [Server.t] state machine as the synchronous
   [Client.deliver], with [Client.stuff] putting identical bytes on the
   wire.  Only the clock differs, which is the point.  The destination
   is probed for [is_down] at every phase boundary, so an MTA crash
   mid-session tempfails exactly where a TCP reset would. *)
let start ~engine ~rng ~rtt ~bytes_per_sec ~src ~dest envelope message ~on_close
    =
  Smtp.Mta.count_session src;
  let server = Smtp.Mta.open_server dest in
  let transport = Smtp.Client.of_server server in
  let step delay f = ignore (Sim.Engine.schedule_after engine ~delay f) in
  let next f = step (rtt rng) f in
  let close outcome =
    (match outcome with
    | `Delivered _ -> ()
    | `Transient reason | `Permanent reason ->
        Log.debug (fun m ->
            m "%s -> %s: session failed: %s" (Smtp.Mta.hostname src)
              (Smtp.Mta.hostname dest) reason));
    on_close outcome
  in
  let fail_reply ~at reply =
    let text =
      Smtp.Client.failure_to_string (Smtp.Client.Protocol_error { at; reply })
    in
    if Smtp.Reply.is_transient_failure reply then close (`Transient text)
    else close (`Permanent text)
  in
  (* Send one command line and hand the reply to [k]; a missing reply
     is the dialogue driver's protocol error, like [Client.deliver]. *)
  let command cmd k =
    let line = Smtp.Command.to_line cmd in
    match transport.Smtp.Client.exchange line with
    | Some reply -> k line reply
    | None -> fail_reply ~at:line (Smtp.Reply.v 500 "no reply")
  in
  let guard k () =
    if Smtp.Mta.is_down dest then close (`Transient "host down (421)") else k ()
  in
  let recipients = Smtp.Envelope.recipients envelope in
  let rec phase_greeting () =
    let banner = transport.Smtp.Client.greeting () in
    if banner.Smtp.Reply.code <> 220 then begin
      let text =
        Smtp.Client.failure_to_string (Smtp.Client.Connection_refused banner)
      in
      if Smtp.Reply.is_transient_failure banner then close (`Transient text)
      else close (`Permanent text)
    end
    else next (guard phase_helo)
  and phase_helo () =
    command (Smtp.Command.Helo (Smtp.Mta.hostname src)) (fun line reply ->
        if Smtp.Reply.is_positive reply then next (guard phase_mail)
        else fail_reply ~at:line reply)
  and phase_mail () =
    command (Smtp.Command.Mail_from (Smtp.Envelope.sender envelope))
      (fun line reply ->
        if Smtp.Reply.is_positive reply then
          next (guard (phase_rcpt recipients 0 []))
        else fail_reply ~at:line reply)
  and phase_rcpt remaining accepted rejected () =
    match remaining with
    | [] ->
        if accepted = 0 then begin
          (* Close the session politely before reporting, like the
             synchronous client. *)
          ignore (transport.Smtp.Client.exchange "QUIT");
          close
            (`Permanent
               (Smtp.Client.failure_to_string
                  (Smtp.Client.All_recipients_rejected (List.rev rejected))))
        end
        else next (guard (phase_data accepted))
    | rcpt :: rest ->
        command (Smtp.Command.Rcpt_to rcpt) (fun _line reply ->
            if Smtp.Reply.is_positive reply then
              next (guard (phase_rcpt rest (accepted + 1) rejected))
            else
              next (guard (phase_rcpt rest accepted ((rcpt, reply) :: rejected))))
  and phase_data accepted () =
    command Smtp.Command.Data (fun line reply ->
        if reply.Smtp.Reply.code = 354 then begin
          (* The body crosses the wire at [bytes_per_sec] on top of its
             round trip; +1 is the terminating dot line, the same wire
             measure as the server's size check. *)
          let wire =
            float_of_int (Smtp.Message.size_bytes message + 1) /. bytes_per_sec
          in
          step (rtt rng +. wire) (guard (phase_dot accepted))
        end
        else fail_reply ~at:line reply)
  and phase_dot accepted () =
    List.iter
      (fun l ->
        ignore (transport.Smtp.Client.exchange (Smtp.Client.stuff l)))
      (Smtp.Message.to_lines message);
    match transport.Smtp.Client.exchange "." with
    | Some reply when Smtp.Reply.is_positive reply ->
        Smtp.Mta.note_bytes_sent src (Smtp.Message.size_bytes message);
        List.iter
          (fun (env, msg) -> Smtp.Mta.accept_from_remote dest env msg)
          (Smtp.Server.take_received server);
        (* QUIT is pipelined with the dot acknowledgment: the sender
           has nothing further to say, so closing costs no extra round
           trip of simulated time. *)
        ignore (transport.Smtp.Client.exchange (Smtp.Command.to_line Smtp.Command.Quit));
        close (`Delivered accepted)
    | Some reply -> fail_reply ~at:"." reply
    | None -> fail_reply ~at:"." (Smtp.Reply.v 500 "no reply")
  in
  next (guard phase_greeting)
