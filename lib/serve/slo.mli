(** Per-message-class latency SLOs.

    One {!Loghist} per class, fed by {!Dispatch} with the
    submission-to-completion sim latency of every remote delivery the
    serving path finishes (mailbox write or bounce).  Latency is
    measured from {e first} admission, so a delivery that burned three
    backoffs reports the whole ordeal, not the last session. *)

type klass =
  | Paid  (** Delivered on the first attempt, carrying postage. *)
  | Unpaid  (** Delivered on the first attempt, no payment header. *)
  | Bounced  (** Abandoned: latency to the bounce decision. *)
  | Retried
      (** Delivered after at least one tempfail — the retry-storm tail.
          Wins over the payment split. *)

val classes : klass list
(** In declaration order (also the encoding order). *)

val klass_name : klass -> string

val class_of_delivery : attempt:int -> paid:bool -> klass
(** The class of a {e delivered} message: [Retried] when [attempt > 0],
    otherwise [Paid]/[Unpaid]. *)

type t

val create : unit -> t
val record : t -> klass -> latency:float -> unit
val count : t -> klass -> int

val quantile : t -> klass -> float -> float
(** In seconds; [nan] when the class is empty.  Error bound: see
    {!Loghist.quantile} (within a factor of ~1.12 anywhere in range). *)

val register : t -> Obs.Metrics.t -> unit
(** Register [serve.slo.<class>.{count,p50,p99,p999}] gauges (empty
    classes read 0). *)

val encode_state : Persist.Codec.W.t -> t -> unit
val restore_state : Persist.Codec.R.t -> t -> unit
(** All four histograms, in {!classes} order. *)
