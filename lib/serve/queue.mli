(** Bounded admission queue: a fixed-capacity FIFO ring of pending
    remote deliveries for one directed MTA pair.

    A full queue never grows — {!push} reports [`Full] and counts the
    refusal; what happens next (drop with backpressure, or defer into
    the MTA retry queue) is the {!Config.queue_policy}'s decision, made
    by {!Dispatch}. *)

type entry = {
  envelope : Smtp.Envelope.t;
  message : Smtp.Message.t;
  submitted : float;
      (** Sim time of first admission — latency is measured from here
          across every retry. *)
  attempt : int;  (** Session attempts already consumed. *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val push : t -> entry -> [ `Ok | `Full ]
(** Append at the tail; [`Full] (counted in {!refused}) leaves the
    queue unchanged. *)

val pop : t -> entry option
(** Remove the head (oldest) entry. *)

val iter : t -> (entry -> unit) -> unit
(** Head-to-tail iteration, without consuming. *)

val admitted : t -> int
(** Total entries ever accepted by {!push}. *)

val refused : t -> int
(** Total pushes refused because the queue was full. *)

val encode_state : Persist.Codec.W.t -> t -> unit
val restore_state : Persist.Codec.R.t -> t -> unit
(** Snapshot capture and verify-restore.  Entries carry live messages,
    so the encoding pins metadata only (admission time, attempt, wire
    size) — the mail itself is rebuilt by deterministic replay like
    every pending engine event.  [restore_state] rejects input whose
    capacity or occupancy contradicts the live queue. *)
