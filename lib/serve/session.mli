(** A typed SMTP session as explicit engine events.

    Runs the full RFC 821 dialogue — connect → HELO → MAIL → RCPT… →
    DATA → body/dot (→ pipelined QUIT) — against the destination's real
    {!Smtp.Server} state machine via a {!Smtp.Client.transport}, but
    spread over the simulation clock: one round trip ([rtt]) is drawn
    per phase and the body additionally pays its wire size at
    [bytes_per_sec].  Many sessions interleave freely; each is a chain
    of one-shot engine events holding no global state.

    The destination's [is_down] flag is probed at every phase boundary,
    so a crash mid-session tempfails at the phase it interrupted.
    Failure classification matches the direct path: 4xx and lost
    connections are [`Transient], 5xx and all-recipients-rejected are
    [`Permanent]. *)

type outcome =
  [ `Delivered of int  (** Accepted-recipient count; mailboxes written. *)
  | `Transient of string
  | `Permanent of string ]

val start :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  rtt:(Sim.Rng.t -> float) ->
  bytes_per_sec:float ->
  src:Smtp.Mta.t ->
  dest:Smtp.Mta.t ->
  Smtp.Envelope.t ->
  Smtp.Message.t ->
  on_close:(outcome -> unit) ->
  unit
(** Open one session now (counted via {!Smtp.Mta.count_session}); the
    first phase fires one [rtt] later and [on_close] is called exactly
    once, from inside the final phase's event.  On [`Delivered],
    acceptance, the [Received] stamp and inbound filtering have already
    run via {!Smtp.Mta.accept_from_remote}. *)
