(** Latency histogram on a log10 scale.

    A thin wrapper over {!Sim.Stats.Histogram} that bins
    [log10 seconds] over [1e-4 s, 1e5 s) with 20 bins per decade, so
    one instrument resolves both a 60 ms clean session and a
    multi-hour retry storm.  Quantiles come back in seconds. *)

type t

val create : unit -> t
val add : t -> float -> unit
(** Record one latency in seconds (non-positive values clamp into the
    underflow bucket). *)

val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] in seconds; [nan] when empty.  The estimate
    inherits {!Sim.Stats.Histogram.quantile}'s one-bucket error bound,
    which on this log grid is a constant {e relative} error: at 20
    bins per decade the true value lies within a factor of
    [10^0.05 ≈ 1.122] of the estimate (under/overflow clamp to the
    range ends). *)

val encode_state : Persist.Codec.W.t -> t -> unit
val restore_state : Persist.Codec.R.t -> t -> unit
