type queue_policy = Drop | Defer

type t = {
  queue_depth : int;
  queue_policy : queue_policy;
  max_sessions : int;
  rtt : Sim.Rng.t -> float;
  bytes_per_sec : float;
  sample_period : float;
}

(* The default round trip mirrors the MTA's one-way latency model
   (10 ms floor plus exponential with mean 50 ms) once per phase: a
   six-phase single-recipient session occupies its slot for ~0.4 s of
   simulated time, so a lane of 4 slots serves ~10 msg/s. *)
let default_rtt rng = 0.010 +. Sim.Dist.exponential rng ~rate:20.

let default =
  {
    queue_depth = 64;
    queue_policy = Drop;
    max_sessions = 4;
    rtt = default_rtt;
    bytes_per_sec = 1e6;
    sample_period = 60.;
  }

let validate t =
  if t.queue_depth < 1 then invalid_arg "Serve.Config: queue_depth must be >= 1";
  if t.max_sessions < 1 then invalid_arg "Serve.Config: max_sessions must be >= 1";
  if not (t.bytes_per_sec > 0.) then
    invalid_arg "Serve.Config: bytes_per_sec must be positive";
  if not (t.sample_period > 0.) then
    invalid_arg "Serve.Config: sample_period must be positive"
