(* Bounded admission queue: a fixed-capacity ring buffer of pending
   remote deliveries for one directed MTA pair.  (This module shadows
   [Stdlib.Queue] inside the [serve] library — deliberately: nothing
   here wants an unbounded queue.) *)

type entry = {
  envelope : Smtp.Envelope.t;
  message : Smtp.Message.t;
  submitted : float;
  attempt : int;
}

type t = {
  capacity : int;
  buf : entry option array;
  mutable head : int;  (* index of the next pop *)
  mutable len : int;
  mutable admitted : int;
  mutable refused : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Queue.create: capacity must be >= 1";
  {
    capacity;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    admitted = 0;
    refused = 0;
  }

let capacity t = t.capacity
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len >= t.capacity
let admitted t = t.admitted
let refused t = t.refused

let push t entry =
  if is_full t then begin
    t.refused <- t.refused + 1;
    `Full
  end
  else begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some entry;
    t.len <- t.len + 1;
    t.admitted <- t.admitted + 1;
    `Ok
  end

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.buf.(t.head) in
    t.buf.(t.head) <- None;  (* release the entry for the GC *)
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1;
    e
  end

let iter t f =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod t.capacity) with
    | Some e -> f e
    | None -> assert false
  done

(* Entries hold live messages whose codecs do not exist (and whose
   bytes are rebuilt by deterministic replay anyway, like every pending
   engine event); the snapshot carries per-entry metadata — admission
   time, attempt count, wire size — which pins the queue's shape
   byte-for-byte without serializing mail. *)
let encode_state w t =
  let open Persist.Codec.W in
  int w t.capacity;
  int w t.admitted;
  int w t.refused;
  int w t.len;
  iter t (fun e ->
      float w e.submitted;
      int w e.attempt;
      int w (Smtp.Message.size_bytes e.message))

let restore_state r t =
  let open Persist.Codec.R in
  let capacity = int r in
  if capacity <> t.capacity then
    corrupt r
      (Printf.sprintf "Serve.Queue: capacity %d does not match live %d" capacity
         t.capacity);
  t.admitted <- int r;
  t.refused <- int r;
  let len = int r in
  if len <> t.len then
    corrupt r
      (Printf.sprintf "Serve.Queue: %d queued entries vs %d live" len t.len);
  for _ = 1 to len do
    ignore (float r);
    ignore (int r);
    ignore (int r)
  done
