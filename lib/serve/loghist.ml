(* Latency observations span five-plus decades (a 60 ms clean session
   to a multi-hour retry storm), so a linear histogram either loses the
   fast end or truncates the slow one.  Binning log10(seconds) keeps
   relative resolution constant: 180 bins over [1e-4 s, 1e5 s) is 20
   bins per decade, i.e. ~12% worst-case quantile error anywhere in
   range (see Slo). *)

let lo = -4.
let hi = 5.
let bins = 180

type t = Sim.Stats.Histogram.t

let create () = Sim.Stats.Histogram.create ~lo ~hi ~bins

(* Clamp at a picosecond so a zero/negative latency (there are none,
   but the type allows them) lands in the underflow bucket instead of
   producing a NaN. *)
let add t seconds = Sim.Stats.Histogram.add t (log10 (Float.max seconds 1e-12))

let count = Sim.Stats.Histogram.count

let quantile t q =
  if Sim.Stats.Histogram.count t = 0 then Float.nan
  else 10. ** Sim.Stats.Histogram.quantile t q

let encode_state = Sim.Stats.Histogram.encode_state
let restore_state = Sim.Stats.Histogram.restore_state
