let log_src = Logs.Src.create "serve.dispatch" ~doc:"Serving-path dispatcher"

module Log = (val Logs.src_log log_src)

(* One lane per directed MTA pair: a bounded admission queue feeding up
   to [max_sessions] concurrent sessions.  Lanes are created on first
   use and never destroyed. *)
type lane = {
  src : int;
  dst : int;
  src_mta : Smtp.Mta.t;
  dst_mta : Smtp.Mta.t;
  queue : Queue.t;
  mutable active : int;  (* sessions currently occupying a slot *)
}

type t = {
  net : Smtp.Mta.network;
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Sim.Rng.t;
  slo : Slo.t;
  lanes : (int, lane) Hashtbl.t;  (* key = (src lsl 20) lor dst *)
  mutable backpressured : int;  (* first admissions refused (Drop) *)
  mutable deferred : int;  (* full-queue parks into the MTA retry queue *)
  mutable started : int;  (* sessions opened *)
}

let config t = t.cfg
let slo t = t.slo
let backpressured t = t.backpressured
let deferred t = t.deferred
let sessions_started t = t.started

let lane_key ~src ~dst = (src lsl 20) lor dst

let lane_of t ~src ~dst =
  let key = lane_key ~src ~dst in
  match Hashtbl.find_opt t.lanes key with
  | Some lane -> lane
  | None ->
      let lane =
        {
          src;
          dst;
          src_mta = Smtp.Mta.find_host t.net src;
          dst_mta = Smtp.Mta.find_host t.net dst;
          queue = Queue.create ~capacity:t.cfg.queue_depth;
          active = 0;
        }
      in
      Hashtbl.replace t.lanes key lane;
      lane

let queue_depth t =
  Hashtbl.fold (fun _ lane acc -> acc + Queue.length lane.queue) t.lanes 0

let active_sessions t =
  Hashtbl.fold (fun _ lane acc -> acc + lane.active) t.lanes 0

let now t = Sim.Engine.now t.engine

(* The session/retry pipeline.  [offer] is the single entry point for
   first admissions and backoff re-admissions alike; a completed
   session frees its slot and [pump]s the queue.  Bounce and retry
   decisions are the MTA's own ([Smtp.Mta.bounce],
   [Smtp.Mta.retry_transient]) so conservation — refund-on-bounce
   included — is byte-for-byte the direct path's. *)
let rec offer t lane (entry : Queue.entry) ~first =
  if lane.active < t.cfg.max_sessions && Queue.is_empty lane.queue then begin
    start_session t lane entry;
    `Queued
  end
  else
    match Queue.push lane.queue entry with
    | `Ok -> `Queued
    | `Full -> (
        match t.cfg.queue_policy with
        | Config.Drop when first ->
            (* 421 at the front door: the submitter hears about it
               (bounce from [submit], [`Backpressure] from
               [submit_checked]) and the load stays the offerer's
               problem — it must not teleport into the queue. *)
            t.backpressured <- t.backpressured + 1;
            `Refused
        | Config.Drop | Config.Defer ->
            (* Deferral, or a re-admission finding the queue full
               again: park in the MTA's bounded backoff queue.  This
               burns a session attempt, so a lane that stays saturated
               bounces (and refunds) rather than parking forever. *)
            park t lane entry "421 admission queue full";
            `Queued)

and park t lane (entry : Queue.entry) reason =
  t.deferred <- t.deferred + 1;
  match
    Smtp.Mta.retry_transient lane.src_mta ~dest_host:lane.dst entry.envelope
      entry.message ~attempt:entry.attempt ~reason
      ~resubmit:(fun ~attempt ->
        ignore (offer t lane { entry with attempt } ~first:false))
  with
  | `Parked _ -> ()
  | `Bounced -> record_bounced t entry

and record_bounced t (entry : Queue.entry) =
  Slo.record t.slo Slo.Bounced ~latency:(now t -. entry.submitted)

and start_session t lane (entry : Queue.entry) =
  lane.active <- lane.active + 1;
  t.started <- t.started + 1;
  let go () =
    Session.start ~engine:t.engine ~rng:t.rng ~rtt:t.cfg.rtt
      ~bytes_per_sec:t.cfg.bytes_per_sec ~src:lane.src_mta ~dest:lane.dst_mta
      entry.envelope entry.message
      ~on_close:(fun outcome -> session_done t lane entry outcome)
  in
  (* The same fault surface as the direct path, consulted at session
     open: [`Lost] burns an attempt (without opening a session, so the
     session counter agrees with the direct path), [`Delayed d] holds
     the slot for [d] — a connection hanging in SYN. *)
  match Smtp.Mta.link_verdict t.net ~src:lane.src ~dst:lane.dst with
  | `Deliver -> go ()
  | `Delayed d -> ignore (Sim.Engine.schedule_after t.engine ~delay:d go)
  | `Lost ->
      ignore
        (Sim.Engine.schedule_after t.engine ~delay:0. (fun () ->
             session_done t lane entry
               (`Transient "connection lost (link fault)")))

and session_done t lane (entry : Queue.entry) outcome =
  lane.active <- lane.active - 1;
  (match outcome with
  | `Delivered _ ->
      let klass =
        Slo.class_of_delivery ~attempt:entry.attempt
          ~paid:(Smtp.Message.payment entry.message <> None)
      in
      Slo.record t.slo klass ~latency:(now t -. entry.submitted)
  | `Permanent reason ->
      Smtp.Mta.bounce lane.src_mta entry.envelope entry.message reason;
      record_bounced t entry
  | `Transient reason -> (
      match
        Smtp.Mta.retry_transient lane.src_mta ~dest_host:lane.dst
          entry.envelope entry.message ~attempt:entry.attempt ~reason
          ~resubmit:(fun ~attempt ->
            ignore (offer t lane { entry with attempt } ~first:false))
      with
      | `Parked _ -> ()
      | `Bounced -> record_bounced t entry));
  pump t lane

and pump t lane =
  (* [start_session] completes only from a later engine event (even
     [`Lost] defers), so the loop cannot re-enter itself. *)
  let continue = ref true in
  while !continue && lane.active < t.cfg.max_sessions do
    match Queue.pop lane.queue with
    | Some entry -> start_session t lane entry
    | None -> continue := false
  done

let serve_capacity t ~src ~dest_host =
  match t.cfg.queue_policy with
  | Config.Defer -> true  (* nothing is ever refused, only parked *)
  | Config.Drop ->
      let lane = lane_of t ~src ~dst:dest_host in
      lane.active < t.cfg.max_sessions || not (Queue.is_full lane.queue)

let serve_admit t ~(src : Smtp.Mta.t) ~dest_host envelope message =
  let lane = lane_of t ~src:(Smtp.Mta.host src) ~dst:dest_host in
  let entry =
    { Queue.envelope; message; submitted = now t; attempt = 0 }
  in
  offer t lane entry ~first:true

let attach ?(config = Config.default) ~rng net =
  Config.validate config;
  let t =
    {
      net;
      engine = Smtp.Mta.engine net;
      cfg = config;
      rng;
      slo = Slo.create ();
      lanes = Hashtbl.create 64;
      backpressured = 0;
      deferred = 0;
      started = 0;
    }
  in
  Smtp.Mta.set_serving net
    (Some
       {
         Smtp.Mta.serve_admit =
           (fun ~src ~dest_host envelope message ->
             serve_admit t ~src ~dest_host envelope message);
         serve_capacity =
           (fun ~src ~dest_host -> serve_capacity t ~src ~dest_host);
       });
  t

let detach t = Smtp.Mta.set_serving t.net None

let register_metrics t metrics =
  Slo.register t.slo metrics;
  Obs.Metrics.gauge metrics "serve.queue.depth" (fun () ->
      float_of_int (queue_depth t));
  Obs.Metrics.gauge metrics "serve.sessions.active" (fun () ->
      float_of_int (active_sessions t));
  Obs.Metrics.gauge metrics "serve.sessions.started" (fun () ->
      float_of_int t.started);
  Obs.Metrics.gauge metrics "serve.backpressured" (fun () ->
      float_of_int t.backpressured);
  Obs.Metrics.gauge metrics "serve.deferred" (fun () ->
      float_of_int t.deferred);
  let depth = Obs.Metrics.series metrics "serve.queue.depth_series" in
  let active = Obs.Metrics.series metrics "serve.sessions.active_series" in
  ignore
    (Sim.Engine.every t.engine ~period:t.cfg.sample_period (fun () ->
         let time = now t in
         Sim.Stats.Series.record depth ~time (float_of_int (queue_depth t));
         Sim.Stats.Series.record active ~time
           (float_of_int (active_sessions t))))

let sorted_lanes t =
  Hashtbl.fold (fun key lane acc -> (key, lane) :: acc) t.lanes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let encode_state w t =
  let open Persist.Codec.W in
  int w t.backpressured;
  int w t.deferred;
  int w t.started;
  Sim.Rng.encode_state w t.rng;
  Slo.encode_state w t.slo;
  list
    (fun w (_, lane) ->
      int w lane.src;
      int w lane.dst;
      int w lane.active;
      Queue.encode_state w lane.queue)
    w (sorted_lanes t)

let restore_state r t =
  let open Persist.Codec.R in
  t.backpressured <- int r;
  t.deferred <- int r;
  t.started <- int r;
  Sim.Rng.restore_state r t.rng;
  Slo.restore_state r t.slo;
  ignore
    (list
       (fun r ->
         let src = int r in
         let dst = int r in
         let active = int r in
         match Hashtbl.find_opt t.lanes (lane_key ~src ~dst) with
         | None ->
             corrupt r
               (Printf.sprintf "Serve.Dispatch: no live lane %d->%d" src dst)
         | Some lane ->
             if lane.active <> active then
               corrupt r
                 (Printf.sprintf
                    "Serve.Dispatch: lane %d->%d has %d active sessions, \
                     snapshot says %d"
                    src dst lane.active active);
             Queue.restore_state r lane.queue)
       r)
