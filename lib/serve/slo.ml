type klass = Paid | Unpaid | Bounced | Retried

let classes = [ Paid; Unpaid; Bounced; Retried ]

let klass_name = function
  | Paid -> "paid"
  | Unpaid -> "unpaid"
  | Bounced -> "bounced"
  | Retried -> "retried"

type t = {
  paid : Loghist.t;
  unpaid : Loghist.t;
  bounced : Loghist.t;
  retried : Loghist.t;
}

let create () =
  {
    paid = Loghist.create ();
    unpaid = Loghist.create ();
    bounced = Loghist.create ();
    retried = Loghist.create ();
  }

let hist t = function
  | Paid -> t.paid
  | Unpaid -> t.unpaid
  | Bounced -> t.bounced
  | Retried -> t.retried

(* [Retried] wins over the payment split: a delivery that needed more
   than one session attempt is the tail the SLO is hunting, whether or
   not it carried postage. *)
let class_of_delivery ~attempt ~paid =
  if attempt > 0 then Retried else if paid then Paid else Unpaid

let record t klass ~latency = Loghist.add (hist t klass) latency
let count t klass = Loghist.count (hist t klass)
let quantile t klass q = Loghist.quantile (hist t klass) q

let register t metrics =
  List.iter
    (fun k ->
      let name = "serve.slo." ^ klass_name k in
      Obs.Metrics.gauge metrics (name ^ ".count") (fun () ->
          float_of_int (count t k));
      List.iter
        (fun (suffix, q) ->
          Obs.Metrics.gauge metrics (name ^ suffix) (fun () ->
              let v = quantile t k q in
              if Float.is_nan v then 0. else v))
        [ (".p50", 0.5); (".p99", 0.99); (".p999", 0.999) ])
    classes

let encode_state w t = List.iter (fun k -> Loghist.encode_state w (hist t k)) classes
let restore_state r t = List.iter (fun k -> Loghist.restore_state r (hist t k)) classes
