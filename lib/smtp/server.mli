(** Server side of an SMTP session: the RFC 821 command state machine.

    One {!t} handles one connection.  Feed it command lines with
    {!on_line}; during a DATA block every line (dot-stuffing removed)
    accumulates until the terminating ["."].  Completed messages are
    queued and retrieved with {!take_received}.

    Recipient acceptance is delegated to the [accept] policy so the MTA
    (or a Zmail ISP, or a spam filter baseline) can refuse mailboxes. *)

type policy = {
  accept_recipient : Address.t -> (unit, string) result;
      (** Checked at RCPT TO time; [Error why] yields a 550. *)
  max_recipients : int;  (** RCPT TO beyond this count gets a 554. *)
  max_message_bytes : int;
      (** Messages larger than this (measured over the received data
          lines) are refused with 552 at the end of DATA. *)
}

val default_policy : local_domains:string list -> policy
(** Accept any mailbox in one of [local_domains]; 100 recipients max;
    1 MiB message cap. *)

type t

val create : hostname:string -> policy:policy -> t

val greeting : t -> Reply.t
(** The 220 banner; must be read (conceptually) before commands. *)

val on_line : t -> string -> Reply.t option
(** Feed one line from the client.  Returns [Some reply] for command
    lines and for the DATA terminator, [None] for intermediate data
    lines.  A [QUIT] reply (221) ends the session; further lines get
    421. *)

val received : t -> (Envelope.t * Message.t) list
(** Messages completed so far, oldest first (kept until taken). *)

val take_received : t -> (Envelope.t * Message.t) list
(** As {!received}, and clears the queue. *)

val closed : t -> bool

(** {2 Structural fast path}

    Remote delivery normally renders the message to lines, runs the
    full RFC 821 dialogue and re-parses the result — which dominates
    per-delivery cost at scale.  When {!message_round_trips} holds, the
    dialogue is a (verified) identity on the message, so
    {!deliver_direct} computes its outcome structurally.  The qcheck
    equivalence property lives in test_smtp. *)

val message_round_trips : Message.t -> bool
(** [true] when re-parsing the message's rendered lines yields a
    structurally equal message: every header name is non-empty and free
    of [' ']/[':'], every value is newline-free and [String.trim]-fixed.
    Bodies always round-trip. *)

val deliver_direct :
  policy:policy ->
  Envelope.t ->
  Message.t ->
  [ `Delivered of Envelope.t * Message.t * (Address.t * Reply.t) list
  | `All_rejected of (Address.t * Reply.t) list
  | `Size_exceeded ]
(** Outcome of the full dialogue for a {!message_round_trips} message,
    without running it: recipients are screened by [policy] in envelope
    order (same cap, idempotent-repeat and 550 semantics as the state
    machine), and the size check applies the same wire measure as
    DATA.  [`Delivered (env, msg, rejected)] carries the envelope of
    accepted recipients and the message the dialogue would have queued;
    [`Size_exceeded] corresponds to the dialogue's 552 at end of DATA.
    Calling it on a message that does not round-trip is a logic error
    (the dialogue would deliver a different message). *)
