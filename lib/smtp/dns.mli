(** A miniature MX registry: maps mail domains to host identifiers.

    The simulated Internet registers each MTA's domains here; senders
    look up where to open an SMTP session, exactly as a real MTA
    resolves MX records. *)

type host = int
(** An opaque host identifier (the MTA's index in the simulation). *)

type t

val create : unit -> t

val register : t -> domain:string -> host -> unit
(** Bind [domain] to [host]; re-registering replaces the binding
    (domains are case-insensitive). *)

val lookup : t -> domain:string -> host option

val lookup_id : t -> int -> host option
(** Resolve by interned domain ID (see {!Address.domain_id}): a bounds
    check and an array load, no string hashing.  Unknown or negative
    IDs resolve to [None]. *)

val lookup_addr : t -> Address.t -> host option
(** [lookup_id] on the address's own domain ID. *)

val domains_of : t -> host -> string list
(** All domains currently served by a host, sorted. *)

val size : t -> int
