type entry = { mutable items : (float * Message.t) list (* reversed *) }

(* Keyed on the interned domain ID plus the local part, so a delivery
   hashes one short string and an int rather than the whole address
   record.  Iteration order is never observable: [users] sorts and
   [total] sums. *)
module H = Hashtbl.Make (struct
  type t = Address.t

  let equal = Address.equal
  let hash (a : Address.t) = Hashtbl.hash a.Address.local lxor (a.Address.domain_id * 0x9e3779b1)
end)

type t = entry H.t

let create () = H.create 64

let entry t address =
  match H.find_opt t address with
  | Some e -> e
  | None ->
      let e = { items = [] } in
      H.replace t address e;
      e

let deliver t address ~time message =
  let e = entry t address in
  e.items <- (time, message) :: e.items

let messages_with_times t address =
  match H.find_opt t address with
  | None -> []
  | Some e -> List.rev e.items

let messages t address = List.map snd (messages_with_times t address)

let count t address =
  match H.find_opt t address with None -> 0 | Some e -> List.length e.items

let total t = H.fold (fun _ e acc -> acc + List.length e.items) t 0

let users t =
  H.fold (fun a e acc -> if e.items = [] then acc else a :: acc) t []
  |> List.sort Address.compare

let clear t address = H.remove t address
