type t = { fields : (string * string) list; body : string }

let zmail_payment_header = "X-Zmail-Payment"
let zmail_ack_header = "X-Zmail-Ack"
let zmail_epoch_header = "X-Zmail-Epoch"

(* Header names compare case-insensitively.  The comparison runs once
   per stored field per lookup on the delivery hot path, so it works
   character-by-character instead of lowercasing (= copying) both
   strings each time. *)
let lower_char c =
  if c >= 'A' && c <= 'Z' then Char.unsafe_chr (Char.code c + 32) else c

let ci_equal a b =
  String.length a = String.length b
  &&
  let n = String.length a in
  let rec go i =
    i >= n
    || (lower_char (String.unsafe_get a i) = lower_char (String.unsafe_get b i)
        && go (i + 1))
  in
  go 0

let header t name =
  List.find_map (fun (n, v) -> if ci_equal n name then Some v else None) t.fields

let headers t = t.fields

let add_header t name value = { t with fields = t.fields @ [ (name, value) ] }

(* Simulated-time date rendering: day counter plus time of day, which
   keeps headers readable without a real calendar.  Rendered by hand —
   byte-identical to [Printf.sprintf "Day %d %02d:%02d:%02d +0000"] —
   because a Date header is stamped on every generated message and
   format interpretation dominated its cost. *)
let add_02d b n =
  if n < 10 then Buffer.add_char b '0';
  Buffer.add_string b (string_of_int n)

let render_date seconds =
  let day = int_of_float (seconds /. 86400.) in
  let rem = seconds -. (float_of_int day *. 86400.) in
  let h = int_of_float (rem /. 3600.) in
  let m = int_of_float ((rem -. (float_of_int h *. 3600.)) /. 60.) in
  let s = int_of_float (rem -. (float_of_int h *. 3600.) -. (float_of_int m *. 60.)) in
  let b = Buffer.create 24 in
  Buffer.add_string b "Day ";
  Buffer.add_string b (string_of_int day);
  Buffer.add_char b ' ';
  add_02d b h;
  Buffer.add_char b ':';
  add_02d b m;
  Buffer.add_char b ':';
  add_02d b s;
  Buffer.add_string b " +0000";
  Buffer.contents b

let make ~from ~to_ ?subject ?(headers = []) ?date ~body () =
  (* Field order: From, To, Subject?, Date?, extra headers.  Built
     back-to-front onto [headers] so nothing is copied. *)
  let to_line =
    match to_ with
    | [ a ] -> Address.to_string a
    | _ -> String.concat ", " (List.map Address.to_string to_)
  in
  let tl = headers in
  let tl =
    match date with None -> tl | Some d -> ("Date", render_date d) :: tl
  in
  let tl = match subject with None -> tl | Some s -> ("Subject", s) :: tl in
  { fields = ("From", Address.to_string from) :: ("To", to_line) :: tl; body }

let from t = Option.bind (header t "From") (fun v -> Result.to_option (Address.of_string v))

let recipients t =
  match header t "To" with
  | None -> []
  | Some v ->
      String.split_on_char ',' v
      |> List.filter_map (fun s ->
             Result.to_option (Address.of_string (String.trim s)))

let subject t = header t "Subject"
let body t = t.body

let mark_payment ?epoch t ~epennies =
  let tl =
    match epoch with
    | None -> []
    | Some seq -> [ (zmail_epoch_header, string_of_int seq) ]
  in
  { t with fields = t.fields @ (zmail_payment_header, string_of_int epennies) :: tl }

let payment t = Option.bind (header t zmail_payment_header) int_of_string_opt

let mark_epoch t ~seq = add_header t zmail_epoch_header (string_of_int seq)

let epoch t = Option.bind (header t zmail_epoch_header) int_of_string_opt

let mark_ack t ~of_id = add_header t zmail_ack_header of_id

let ack_of t = header t zmail_ack_header

let message_id t = header t "Message-Id"

let split_lines s = if s = "" then [] else String.split_on_char '\n' s

let to_lines t =
  List.map (fun (n, v) -> n ^ ": " ^ v) t.fields @ ("" :: split_lines t.body)

let of_lines lines =
  let rec parse_fields acc = function
    | [] -> Ok (List.rev acc, [])
    | "" :: rest -> Ok (List.rev acc, rest)
    | line :: rest -> (
        match String.index_opt line ':' with
        | None -> Error (Printf.sprintf "malformed header line %S" line)
        | Some i ->
            let name = String.sub line 0 i in
            let value =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            if name = "" || String.contains name ' ' then
              Error (Printf.sprintf "malformed header name in %S" line)
            else parse_fields ((name, value) :: acc) rest)
  in
  match parse_fields [] lines with
  | Error _ as e -> e
  | Ok (fields, body_lines) -> Ok { fields; body = String.concat "\n" body_lines }

let to_string t = String.concat "\n" (to_lines t)

let of_string s = of_lines (String.split_on_char '\n' s)

(* Arithmetically equal to [String.length (to_string t)] — each field
   renders as ["name: value\n"], the blank separator adds one byte, and
   a non-empty body follows the separator verbatim — without building
   the rendering.  A qcheck property in test_smtp pins the
   equivalence. *)
let size_bytes t =
  let fields =
    List.fold_left
      (fun acc (n, v) -> acc + String.length n + String.length v + 3)
      0 t.fields
  in
  fields + if t.body = "" then 0 else String.length t.body + 1

let pp ppf t = Format.pp_print_string ppf (to_string t)
