type t = { fields : (string * string) list; body : string }

let zmail_payment_header = "X-Zmail-Payment"
let zmail_ack_header = "X-Zmail-Ack"
let zmail_epoch_header = "X-Zmail-Epoch"

let canonical name = String.lowercase_ascii name

let header t name =
  let key = canonical name in
  List.find_map
    (fun (n, v) -> if canonical n = key then Some v else None)
    t.fields

let headers t = t.fields

let add_header t name value = { t with fields = t.fields @ [ (name, value) ] }

(* Simulated-time date rendering: day counter plus time of day, which
   keeps headers readable without a real calendar. *)
let render_date seconds =
  let day = int_of_float (seconds /. 86400.) in
  let rem = seconds -. (float_of_int day *. 86400.) in
  let h = int_of_float (rem /. 3600.) in
  let m = int_of_float ((rem -. (float_of_int h *. 3600.)) /. 60.) in
  let s = int_of_float (rem -. (float_of_int h *. 3600.) -. (float_of_int m *. 60.)) in
  Printf.sprintf "Day %d %02d:%02d:%02d +0000" day h m s

let make ~from ~to_ ?subject ?(headers = []) ?date ~body () =
  let base =
    [ ("From", Address.to_string from);
      ("To", String.concat ", " (List.map Address.to_string to_));
    ]
  in
  let with_subject =
    match subject with None -> base | Some s -> base @ [ ("Subject", s) ]
  in
  let with_date =
    match date with
    | None -> with_subject
    | Some d -> with_subject @ [ ("Date", render_date d) ]
  in
  { fields = with_date @ headers; body }

let from t = Option.bind (header t "From") (fun v -> Result.to_option (Address.of_string v))

let recipients t =
  match header t "To" with
  | None -> []
  | Some v ->
      String.split_on_char ',' v
      |> List.filter_map (fun s ->
             Result.to_option (Address.of_string (String.trim s)))

let subject t = header t "Subject"
let body t = t.body

let mark_payment t ~epennies =
  add_header t zmail_payment_header (string_of_int epennies)

let payment t = Option.bind (header t zmail_payment_header) int_of_string_opt

let mark_epoch t ~seq = add_header t zmail_epoch_header (string_of_int seq)

let epoch t = Option.bind (header t zmail_epoch_header) int_of_string_opt

let mark_ack t ~of_id = add_header t zmail_ack_header of_id

let ack_of t = header t zmail_ack_header

let message_id t = header t "Message-Id"

let split_lines s = if s = "" then [] else String.split_on_char '\n' s

let to_lines t =
  List.map (fun (n, v) -> n ^ ": " ^ v) t.fields @ ("" :: split_lines t.body)

let of_lines lines =
  let rec parse_fields acc = function
    | [] -> Ok (List.rev acc, [])
    | "" :: rest -> Ok (List.rev acc, rest)
    | line :: rest -> (
        match String.index_opt line ':' with
        | None -> Error (Printf.sprintf "malformed header line %S" line)
        | Some i ->
            let name = String.sub line 0 i in
            let value =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            if name = "" || String.contains name ' ' then
              Error (Printf.sprintf "malformed header name in %S" line)
            else parse_fields ((name, value) :: acc) rest)
  in
  match parse_fields [] lines with
  | Error _ as e -> e
  | Ok (fields, body_lines) -> Ok { fields; body = String.concat "\n" body_lines }

let to_string t = String.concat "\n" (to_lines t)

let of_string s = of_lines (String.split_on_char '\n' s)

let size_bytes t = String.length (to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
