(** Client side of an SMTP session: drives a full HELO → MAIL → RCPT →
    DATA → QUIT dialogue against an abstract line transport.

    The transport is one function from line to reply, so the same
    driver runs against an in-memory {!Server} (as the simulator's MTA
    does) or against a recorded transcript in tests. *)

type transport = {
  greeting : unit -> Reply.t;
      (** Read the server's 220 banner (called once, first). *)
  exchange : string -> Reply.t option;
      (** Send one line; [Some reply] for commands and the DATA
          terminator, [None] for intermediate data lines. *)
}

val of_server : Server.t -> transport
(** Wire a transport directly to an in-memory server session. *)

type outcome = {
  accepted : Address.t list;  (** Recipients the server took. *)
  rejected : (Address.t * Reply.t) list;  (** Refused recipients. *)
}

type failure =
  | Connection_refused of Reply.t  (** Non-220 banner. *)
  | Protocol_error of { at : string; reply : Reply.t }
      (** An unexpected reply to the named command. *)
  | All_recipients_rejected of (Address.t * Reply.t) list

val deliver :
  transport -> hostname:string -> Envelope.t -> Message.t ->
  (outcome, failure) result
(** Run the dialogue synchronously.  Message content is dot-stuffed per
    RFC 821 §4.5.2.  Delivery succeeds if at least one recipient is
    accepted; per-recipient rejections are reported in the outcome.

    [Serve.Session] runs the same dialogue against the same transport
    but spreads it over engine events, one round trip per phase;
    {!stuff} is shared so both paths put identical bytes on the
    wire. *)

val stuff : string -> string
(** Dot-stuff one data line (RFC 821 §4.5.2): a leading ['.'] is
    doubled.  The server's reader undoes it symmetrically. *)

val failure_to_string : failure -> string
