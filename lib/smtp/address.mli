(** Email addresses of the form [local@domain].

    Parsing is deliberately stricter than RFC 5321 (no quoting, no
    source routes): the simulator only ever generates the simple form,
    and strictness catches generator bugs early.

    Every address also carries its domain's {e interned ID} — a dense
    non-negative integer assigned process-wide, content-keyed on the
    lowercased domain string.  Domains number in the hundreds while
    addresses are constructed millions of times, so routing layers key
    arrays by {!domain_id} instead of hashing domain strings per
    delivery (see DESIGN.md §9). *)

type t = private { local : string; domain : string; domain_id : int }

val v : local:string -> domain:string -> t
(** Build an address.
    @raise Invalid_argument if either part is empty or contains
    characters outside [A-Za-z0-9._+-]. *)

val unsafe_of_parts : local:string -> domain:string -> domain_id:int -> t
(** Build an address {e without} validating, lowercasing or interning —
    for hot paths constructing addresses from parts already known to be
    valid and lowercase, with [domain_id = intern_domain domain]
    precomputed (e.g. a world's per-ISP tables).  Feeding it anything
    else produces an address that violates this module's invariants. *)

val of_string : string -> (t, string) result
(** Parse ["local@domain"]. *)

val of_string_exn : string -> t

val to_string : t -> string

val local : t -> string
val domain : t -> string

val domain_id : t -> int
(** The interned ID of this address's (lowercased) domain.  Equal
    domains always yield equal IDs within a process; IDs are dense from
    0 in first-interning order.  Not stable across processes — never
    serialize one. *)

val intern_domain : string -> int
(** Intern an (already lowercase) domain string, returning its dense
    ID.  Idempotent. *)

val lowercase_if_needed : string -> string
(** [String.lowercase_ascii] that returns its argument physically
    unchanged when it contains no uppercase ASCII — the common case
    for generated domains, saving a copy per call. *)

val interned_domains : unit -> int
(** Number of distinct domains interned so far (= the exclusive upper
    bound of all live IDs). *)

val interned_domain : int -> string
(** The domain string behind an ID.
    @raise Invalid_argument on an ID never returned by
    {!intern_domain}. *)

val equal : t -> t -> bool
(** Case-insensitive on the domain, case-sensitive on the local part
    (the common conservative interpretation). *)

val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
