(** Mail transfer agents on a simulated network.

    A {!network} ties MTAs to one {!Sim.Engine.t}, an MX registry and a
    latency model.  Remote delivery has two paths:

    - {e direct} (the default): after a one-way latency draw, a message
      that round-trips the wire cleanly takes {!Server.deliver_direct}
      — a structural fast path property-tested equivalent to the full
      RFC 821 dialogue — and any other message runs the real
      line-by-line exchange through {!Client} and {!Server}.
    - {e served}: when a serving layer is installed ({!set_serving},
      normally by [Serve.Dispatch]), remote submissions enter bounded
      per-destination admission queues and are delivered by explicit
      concurrent SMTP sessions ([Serve.Session]) whose phases are
      individual engine events.  [deliver_direct] remains the fast path
      for experiments that do not opt in.

    Hooks let higher layers participate in the mail flow:
    - [outbound_stamp] rewrites a message as it leaves (a compliant
      Zmail ISP stamps the payment header here);
    - [inbound_filter] decides the fate of each arriving message
      (deliver, intercept for protocol processing, or discard);
    - [on_delivered] observes every mailbox write. *)

type network

val network :
  ?latency:(Sim.Rng.t -> float) -> ?local_latency:float -> Sim.Engine.t ->
  network
(** [latency] (default: exponential with mean 50 ms plus 10 ms floor)
    draws the one-way transmission delay preceding a {e direct} remote
    delivery; on the served path the session layer draws its own
    per-phase round-trip times instead ([Serve.Config.rtt]) and this
    model is not consulted.  [local_latency] (default 1 ms) applies to
    same-host delivery on both paths. *)

val engine : network -> Sim.Engine.t
val dns : network -> Dns.t

val set_link_fault :
  network ->
  (src:int -> dst:int -> [ `Deliver | `Delayed of float | `Lost ]) option ->
  unit
(** Install (or clear) a per-link fault oracle consulted before each
    outbound SMTP session, keyed by the {!host} ids of the sending and
    receiving MTAs (a {!Sim.Fault.Mesh.attempt} closure fits directly).
    [`Lost] counts as a transient failure and burns a retry attempt;
    [`Delayed d] re-runs the same attempt after [d] seconds without
    consuming one.  [None] (the default) costs nothing on the delivery
    path. *)

val link_verdict :
  network -> src:Dns.host -> dst:Dns.host ->
  [ `Deliver | `Delayed of float | `Lost ]
(** Consult the installed link-fault oracle for one session attempt
    ([`Deliver] when none is installed).  The serving layer asks this
    at session open so queued deliveries cross the same fault surface
    as direct ones. *)

type retry_policy = {
  max_attempts : int;  (** Session attempts before the message bounces. *)
  base_backoff : float;  (** Seconds before the first retry. *)
  backoff_factor : float;  (** Backoff multiplier per attempt. *)
  backoff_cap : float;  (** Upper bound on any single backoff. *)
  queue_cap : int;
      (** Max envelopes parked in backoff network-wide; an arriving
          retry beyond this bounces immediately (counted in
          {!retry_overflows}). *)
}

val default_retry : retry_policy
(** 3 attempts, 60 s base doubling per attempt, 1 h cap, unbounded
    queue — exactly the behavior the MTA had before the policy became
    configurable. *)

val set_retry_policy : network -> retry_policy -> unit
(** @raise Invalid_argument on [max_attempts < 1], a negative backoff,
    or a negative [queue_cap]. *)

val retry_policy : network -> retry_policy

val retry_queue_length : network -> int
(** Envelopes currently parked in backoff across the whole network. *)

val retry_overflows : network -> int
(** Messages bounced because the retry queue was full. *)

type t

type decision =
  | Deliver  (** Write to the addressee's mailbox. *)
  | Intercept  (** Consumed by the ISP layer; no mailbox write. *)
  | Discard of string  (** Dropped, with a reason (counted). *)

val create : network -> hostname:string -> domains:string list -> t
(** Create an MTA and register its domains in the network's MX
    registry.
    @raise Invalid_argument if a domain is already registered. *)

val host : t -> Dns.host
val hostname : t -> string
val domains : t -> string list
val mailboxes : t -> Mailbox.t

val set_outbound_stamp : t -> (Envelope.t -> Message.t -> Message.t) -> unit
val set_inbound_filter : t -> (sender:Address.t -> rcpt:Address.t -> Message.t -> decision) -> unit
val set_on_delivered : t -> (rcpt:Address.t -> Message.t -> unit) -> unit

val set_on_bounce : t -> (Envelope.t -> Message.t -> string -> unit) -> unit
(** Observe every bounce on this (sending) MTA with the abandoned
    envelope, the full message and the failure reason — the hook a
    Zmail ISP uses to refund the e-penny riding in a dead letter. *)

val set_down : t -> bool -> unit
(** A down MTA answers sessions with 421; senders retry with backoff. *)

val is_down : t -> bool

val set_retain_mail : t -> bool -> unit
(** When [false], delivered messages are counted and fed to the
    [on_delivered] hook but {e not} stored in {!mailboxes} — the memory
    valve for million-user runs, where retaining every delivery forever
    would dominate the heap.  Default [true]. *)

val submit : t -> Envelope.t -> Message.t -> unit
(** Hand a message from a local user to this MTA for delivery
    (local and remote recipients are routed automatically).  A
    [Message-Id] header is stamped if the message lacks one.  With a
    serving layer installed, a remote submission refused at admission
    (queue full under the [`Drop] policy) bounces — the [on_bounce]
    hook still fires, so paid mail is still refunded. *)

val submit_checked : t -> Envelope.t -> Message.t -> [ `Submitted | `Backpressure ]
(** As {!submit}, but when a serving layer is installed and any remote
    destination's admission queue lacks room, return [`Backpressure]
    {e without any side effect} — no counter moves, nothing is stamped
    or queued — so the caller can undo its own side of the transaction
    (e.g. refund the e-penny) and re-offer the message later.  Without
    a serving layer (or for purely local recipients) this is exactly
    [submit], returning [`Submitted]. *)

type stats = {
  submitted : int;  (** Messages accepted from local users. *)
  sessions : int;  (** Outbound SMTP sessions run. *)
  delivered : int;  (** Mailbox writes on this host. *)
  intercepted : int;
  discarded : int;
  bounced : int;  (** Envelope-recipients abandoned after retries. *)
  bytes_sent : int;  (** Message bytes sent over remote sessions. *)
}

val stats : t -> stats

val dead_letters : t -> (Envelope.t * string) list
(** Abandoned sends with the failure reason, oldest first. *)

(** {1 Serving-layer SPI}

    The hooks [Serve.Dispatch] uses to route remote delivery through
    explicit sessions while reusing this module's accounting, retry
    and bounce machinery.  Ordinary callers never need these. *)

type serving = {
  serve_admit :
    src:t -> dest_host:Dns.host -> Envelope.t -> Message.t ->
    [ `Queued | `Refused ];
      (** Take ownership of one remote delivery at submission time.
          [`Queued] means the serving layer will eventually deliver,
          retry or bounce it; [`Refused] makes {!submit} bounce the
          envelope (421-style). *)
  serve_capacity : src:Dns.host -> dest_host:Dns.host -> bool;
      (** Side-effect-free admission probe backing {!submit_checked}. *)
}

val set_serving : network -> serving option -> unit
(** Install (or remove) the serving layer.  [None] (the default)
    restores the direct path. *)

val find_host : network -> Dns.host -> t
(** The MTA with the given {!host} id.
    @raise Not_found for an unknown id. *)

val open_server : t -> Server.t
(** A fresh RFC 821 server session bound to this (receiving) MTA's
    recipient policy, for a {!Client.transport} to drive. *)

val accept_from_remote : t -> Envelope.t -> Message.t -> unit
(** Complete a remote delivery on this (receiving) MTA: stamp the
    [Received] header, run the inbound filter per recipient and
    deliver/intercept/discard — exactly what the direct path does when
    a session succeeds. *)

val count_session : t -> unit
(** Count one outbound SMTP session opened by this (sending) MTA. *)

val note_bytes_sent : t -> int -> unit
(** Add to this (sending) MTA's [bytes_sent] counter. *)

val bounce : t -> Envelope.t -> Message.t -> string -> unit
(** Abandon an envelope on this (sending) MTA: count it, append the
    dead letter and fire the [on_bounce] hook (which is what refunds
    paid mail). *)

val retry_transient :
  t -> dest_host:Dns.host -> Envelope.t -> Message.t -> attempt:int ->
  reason:string -> resubmit:(attempt:int -> unit) ->
  [ `Parked of float | `Bounced ]
(** The shared tempfail decision: park the envelope in the network's
    bounded backoff queue and schedule [resubmit ~attempt:(attempt+1)]
    after the capped exponential backoff ([`Parked backoff]), or — on
    the final attempt, or when the queue is at [queue_cap] — {!bounce}
    it ([`Bounced]).  The direct path passes its own transmit as
    [resubmit]; the serving layer passes queue re-admission. *)

(**/**)

module Internal : sig
  val received_stamp : from_domain:string -> by:string -> float -> string
  (** The hand-rendered [Received] header value; byte-identical to
      [Printf.sprintf "from %s by %s; t=%.3f" from_domain by now] for
      the simulator's non-negative times.  Exposed only so the test
      suite can pin that equivalence; not a stable API. *)
end

(**/**)
