let log_src = Logs.Src.create "smtp.mta" ~doc:"Simulated mail transfer agents"

module Log = (val Logs.src_log log_src)

type decision = Deliver | Intercept | Discard of string

type stats = {
  submitted : int;
  sessions : int;
  delivered : int;
  intercepted : int;
  discarded : int;
  bounced : int;
  bytes_sent : int;
}

type t = {
  net : network;
  host : Dns.host;
  hostname : string;
  domains : string list;
  mailboxes : Mailbox.t;
  mutable outbound_stamp : Envelope.t -> Message.t -> Message.t;
  mutable inbound_filter : sender:Address.t -> rcpt:Address.t -> Message.t -> decision;
  mutable on_delivered : rcpt:Address.t -> Message.t -> unit;
  mutable on_bounce : Envelope.t -> Message.t -> string -> unit;
  mutable down : bool;
  mutable submitted : int;
  mutable sessions : int;
  mutable delivered : int;
  mutable intercepted : int;
  mutable discarded : int;
  mutable bounced : int;
  mutable bytes_sent : int;
  mutable dead : (Envelope.t * string) list;  (* reversed *)
  mutable next_message_id : int;
}

and network = {
  engine : Sim.Engine.t;
  registry : Dns.t;
  latency : Sim.Rng.t -> float;
  local_latency : float;
  rng : Sim.Rng.t;
  mutable hosts : t list;  (* reversed; host id = index at creation *)
  mutable host_count : int;
}

let default_latency rng = 0.010 +. Sim.Dist.exponential rng ~rate:20.

let network ?(latency = default_latency) ?(local_latency = 0.001) engine =
  {
    engine;
    registry = Dns.create ();
    latency;
    local_latency;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    hosts = [];
    host_count = 0;
  }

let engine net = net.engine
let dns net = net.registry

let create net ~hostname ~domains =
  List.iter
    (fun d ->
      match Dns.lookup net.registry ~domain:d with
      | Some _ -> invalid_arg (Printf.sprintf "Mta.create: domain %s already registered" d)
      | None -> ())
    domains;
  let t =
    {
      net;
      host = net.host_count;
      hostname;
      domains = List.map String.lowercase_ascii domains;
      mailboxes = Mailbox.create ();
      outbound_stamp = (fun _ m -> m);
      inbound_filter = (fun ~sender:_ ~rcpt:_ _ -> Deliver);
      on_delivered = (fun ~rcpt:_ _ -> ());
      on_bounce = (fun _ _ _ -> ());
      down = false;
      submitted = 0;
      sessions = 0;
      delivered = 0;
      intercepted = 0;
      discarded = 0;
      bounced = 0;
      bytes_sent = 0;
      dead = [];
      next_message_id = 0;
    }
  in
  net.host_count <- net.host_count + 1;
  net.hosts <- t :: net.hosts;
  List.iter (fun d -> Dns.register net.registry ~domain:d t.host) domains;
  t

let host t = t.host
let hostname t = t.hostname
let domains t = t.domains
let mailboxes t = t.mailboxes

let set_outbound_stamp t f = t.outbound_stamp <- f
let set_inbound_filter t f = t.inbound_filter <- f
let set_on_delivered t f = t.on_delivered <- f
let set_on_bounce t f = t.on_bounce <- f
let set_down t b = t.down <- b
let is_down t = t.down

let find_host net id = List.find (fun h -> h.host = id) net.hosts

(* Accept every mailbox within our domains; actual per-message policy
   runs in the inbound filter after DATA completes, like real ISPs
   filtering after acceptance. *)
let session_policy t = Server.default_policy ~local_domains:t.domains

(* Deliver a message that has fully arrived at this (receiving) MTA. *)
let accept_locally t envelope message =
  let now = Sim.Engine.now t.net.engine in
  let sender = Envelope.sender envelope in
  let stamped =
    Message.add_header message "Received"
      (Printf.sprintf "from %s by %s; t=%.3f" (Address.domain sender) t.hostname now)
  in
  List.iter
    (fun rcpt ->
      match t.inbound_filter ~sender ~rcpt stamped with
      | Deliver ->
          Mailbox.deliver t.mailboxes rcpt ~time:now stamped;
          t.delivered <- t.delivered + 1;
          t.on_delivered ~rcpt stamped
      | Intercept -> t.intercepted <- t.intercepted + 1
      | Discard _ -> t.discarded <- t.discarded + 1)
    (Envelope.recipients envelope)

let bounce t envelope message reason =
  Log.warn (fun m ->
      m "%s: bouncing %a: %s" t.hostname Envelope.pp envelope reason);
  t.bounced <- t.bounced + List.length (Envelope.recipients envelope);
  t.dead <- (envelope, reason) :: t.dead;
  t.on_bounce envelope message reason

let max_attempts = 3

(* Run one SMTP session from [t] to [dest] for [envelope]/[message];
   returns [Ok ()] or a retryable/permanent failure. *)
let run_session t dest envelope message =
  t.sessions <- t.sessions + 1;
  if dest.down then Error (`Transient "host down (421)")
  else begin
    let server = Server.create ~hostname:dest.hostname ~policy:(session_policy dest) in
    let transport = Client.of_server server in
    match Client.deliver transport ~hostname:t.hostname envelope message with
    | Ok _outcome ->
        t.bytes_sent <- t.bytes_sent + Message.size_bytes message;
        List.iter
          (fun (env, msg) -> accept_locally dest env msg)
          (Server.take_received server);
        Ok ()
    | Error (Client.Connection_refused reply) ->
        if Reply.is_transient_failure reply then Error (`Transient (Reply.to_line reply))
        else Error (`Permanent (Reply.to_line reply))
    | Error (Client.All_recipients_rejected _ as f) ->
        Error (`Permanent (Client.failure_to_string f))
    | Error (Client.Protocol_error { reply; _ } as f) ->
        if Reply.is_transient_failure reply then
          Error (`Transient (Client.failure_to_string f))
        else Error (`Permanent (Client.failure_to_string f))
  end

let rec transmit t ~dest_host envelope message ~attempt =
  let dest = find_host t.net dest_host in
  match run_session t dest envelope message with
  | Ok () -> ()
  | Error (`Permanent reason) -> bounce t envelope message reason
  | Error (`Transient reason) ->
      if attempt + 1 >= max_attempts then bounce t envelope message reason
      else begin
        Log.debug (fun m ->
            m "%s: transient failure to host %d (attempt %d): %s" t.hostname
              dest_host (attempt + 1) reason);
        let backoff = 60. *. (2. ** float_of_int attempt) in
        ignore
          (Sim.Engine.schedule_after t.net.engine ~delay:backoff (fun () ->
               transmit t ~dest_host envelope message ~attempt:(attempt + 1)))
      end

let submit t envelope message =
  t.submitted <- t.submitted + 1;
  (* Stamp a Message-Id on first submission, like any real MTA. *)
  let message =
    match Message.message_id message with
    | Some _ -> message
    | None ->
        t.next_message_id <- t.next_message_id + 1;
        Message.add_header message "Message-Id"
          (Printf.sprintf "<%d@%s>" t.next_message_id t.hostname)
  in
  let message = t.outbound_stamp envelope message in
  let by_domain =
    List.map
      (fun d -> (d, Envelope.recipients_in envelope ~domain:d))
      (Envelope.domains envelope)
  in
  List.iter
    (fun (domain, recipients) ->
      let sub_envelope = Envelope.v ~sender:(Envelope.sender envelope) ~recipients in
      match Dns.lookup t.net.registry ~domain with
      | None -> bounce t sub_envelope message (Printf.sprintf "no MX for %s" domain)
      | Some dest_host when dest_host = t.host ->
          ignore
            (Sim.Engine.schedule_after t.net.engine ~delay:t.net.local_latency
               (fun () -> accept_locally t sub_envelope message))
      | Some dest_host ->
          let delay = t.net.latency t.net.rng in
          ignore
            (Sim.Engine.schedule_after t.net.engine ~delay (fun () ->
                 transmit t ~dest_host sub_envelope message ~attempt:0)))
    by_domain

let stats t =
  {
    submitted = t.submitted;
    sessions = t.sessions;
    delivered = t.delivered;
    intercepted = t.intercepted;
    discarded = t.discarded;
    bounced = t.bounced;
    bytes_sent = t.bytes_sent;
  }

let dead_letters t = List.rev t.dead
