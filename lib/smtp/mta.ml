let log_src = Logs.Src.create "smtp.mta" ~doc:"Simulated mail transfer agents"

module Log = (val Logs.src_log log_src)

type decision = Deliver | Intercept | Discard of string

type stats = {
  submitted : int;
  sessions : int;
  delivered : int;
  intercepted : int;
  discarded : int;
  bounced : int;
  bytes_sent : int;
}

type t = {
  net : network;
  host : Dns.host;
  hostname : string;
  domains : string list;
  policy : Server.policy;  (* one instance per MTA, shared by sessions *)
  mailboxes : Mailbox.t;
  mutable outbound_stamp : Envelope.t -> Message.t -> Message.t;
  mutable inbound_filter : sender:Address.t -> rcpt:Address.t -> Message.t -> decision;
  mutable on_delivered : rcpt:Address.t -> Message.t -> unit;
  mutable on_bounce : Envelope.t -> Message.t -> string -> unit;
  mutable down : bool;
  mutable retain_mail : bool;
  mutable submitted : int;
  mutable sessions : int;
  mutable delivered : int;
  mutable intercepted : int;
  mutable discarded : int;
  mutable bounced : int;
  mutable bytes_sent : int;
  mutable dead : (Envelope.t * string) list;  (* reversed *)
  mutable next_message_id : int;
}

and network = {
  engine : Sim.Engine.t;
  registry : Dns.t;
  latency : Sim.Rng.t -> float;
  local_latency : float;
  rng : Sim.Rng.t;
  mutable hosts : t list;  (* reversed; host id = index at creation *)
  mutable host_arr : t array;  (* hosts by id, for O(1) routing *)
  mutable host_count : int;
  mutable link_fault :
    (src:int -> dst:int -> [ `Deliver | `Delayed of float | `Lost ]) option;
  mutable retry : retry_policy;
  mutable retrying : int;  (* envelopes currently parked in backoff *)
  mutable retry_overflows : int;
  mutable serving : serving option;
}

(* The serving-layer plug (lib/serve installs one): remote deliveries
   are handed to [serve_admit] instead of running [transmit] after a
   one-way latency draw.  [serve_capacity] is the side-effect-free
   probe [submit_checked] uses to refuse a whole submission before any
   counter moves. *)
and serving = {
  serve_admit :
    src:t -> dest_host:Dns.host -> Envelope.t -> Message.t ->
    [ `Queued | `Refused ];
  serve_capacity : src:Dns.host -> dest_host:Dns.host -> bool;
}

and retry_policy = {
  max_attempts : int;
  base_backoff : float;
  backoff_factor : float;
  backoff_cap : float;
  queue_cap : int;
}

(* Reproduces the historical hard-wired behavior exactly: 3 attempts,
   60 * 2^attempt seconds between them (worst case 240 s, far below the
   cap), an effectively unbounded queue. *)
let default_retry =
  {
    max_attempts = 3;
    base_backoff = 60.;
    backoff_factor = 2.;
    backoff_cap = 3600.;
    queue_cap = max_int;
  }

let default_latency rng = 0.010 +. Sim.Dist.exponential rng ~rate:20.

let network ?(latency = default_latency) ?(local_latency = 0.001) engine =
  {
    engine;
    registry = Dns.create ();
    latency;
    local_latency;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    hosts = [];
    host_arr = [||];
    host_count = 0;
    link_fault = None;
    retry = default_retry;
    retrying = 0;
    retry_overflows = 0;
    serving = None;
  }

let set_link_fault net f = net.link_fault <- f
let set_serving net s = net.serving <- s

let link_verdict net ~src ~dst =
  match net.link_fault with
  | None -> `Deliver
  | Some verdict -> verdict ~src ~dst

let set_retry_policy net p =
  if p.max_attempts < 1 then invalid_arg "Mta: max_attempts must be >= 1";
  if p.base_backoff < 0. || p.backoff_cap < 0. then
    invalid_arg "Mta: backoff must be non-negative";
  if p.queue_cap < 0 then invalid_arg "Mta: queue_cap must be non-negative";
  net.retry <- p

let retry_policy net = net.retry
let retry_queue_length net = net.retrying
let retry_overflows net = net.retry_overflows

let engine net = net.engine
let dns net = net.registry

let create net ~hostname ~domains =
  List.iter
    (fun d ->
      match Dns.lookup net.registry ~domain:d with
      | Some _ -> invalid_arg (Printf.sprintf "Mta.create: domain %s already registered" d)
      | None -> ())
    domains;
  let domains = List.map String.lowercase_ascii domains in
  (* Same acceptance rule as [Server.default_policy ~local_domains] but
     matching on interned domain IDs instead of comparing strings. *)
  let domain_ids = List.map Address.intern_domain domains in
  let policy =
    {
      Server.accept_recipient =
        (fun a ->
          if List.mem (Address.domain_id a) domain_ids then Ok ()
          else Error (Address.to_string a));
      max_recipients = 100;
      max_message_bytes = 1024 * 1024;
    }
  in
  let t =
    {
      net;
      host = net.host_count;
      hostname;
      domains;
      policy;
      mailboxes = Mailbox.create ();
      outbound_stamp = (fun _ m -> m);
      inbound_filter = (fun ~sender:_ ~rcpt:_ _ -> Deliver);
      on_delivered = (fun ~rcpt:_ _ -> ());
      on_bounce = (fun _ _ _ -> ());
      down = false;
      retain_mail = true;
      submitted = 0;
      sessions = 0;
      delivered = 0;
      intercepted = 0;
      discarded = 0;
      bounced = 0;
      bytes_sent = 0;
      dead = [];
      next_message_id = 0;
    }
  in
  net.host_count <- net.host_count + 1;
  net.hosts <- t :: net.hosts;
  net.host_arr <- Array.of_list (List.rev net.hosts);
  List.iter (fun d -> Dns.register net.registry ~domain:d t.host) domains;
  t

let host t = t.host
let hostname t = t.hostname
let domains t = t.domains
let mailboxes t = t.mailboxes

let set_outbound_stamp t f = t.outbound_stamp <- f
let set_inbound_filter t f = t.inbound_filter <- f
let set_on_delivered t f = t.on_delivered <- f
let set_on_bounce t f = t.on_bounce <- f
let set_down t b = t.down <- b
let is_down t = t.down
let set_retain_mail t b = t.retain_mail <- b

let find_host net id =
  if id < 0 || id >= Array.length net.host_arr then raise Not_found;
  net.host_arr.(id)

(* Accept every mailbox within our domains; actual per-message policy
   runs in the inbound filter after DATA completes, like real ISPs
   filtering after acceptance. *)
let session_policy t = t.policy

(* Byte-identical to [Printf.sprintf "%.3f" x] for finite [x >= 0].
   Scaled-integer rounding is exact except within a few ulp of a
   half-millisecond tie (where decimal rounding of the binary value
   could go either way), so those — and out-of-range magnitudes — defer
   to [sprintf].  A qcheck property in test_smtp pins the
   equivalence. *)
let add_t3 b x =
  let scaled = x *. 1000. in
  if not (Float.is_finite scaled) || scaled >= 1e15 then
    Buffer.add_string b (Printf.sprintf "%.3f" x)
  else
    let frac = scaled -. Float.of_int (int_of_float scaled) in
    let ulp = Float.succ scaled -. scaled in
    if Float.abs (frac -. 0.5) <= 8. *. Float.max ulp epsilon_float then
      Buffer.add_string b (Printf.sprintf "%.3f" x)
    else begin
      let ms = int_of_float (Float.round scaled) in
      Buffer.add_string b (string_of_int (ms / 1000));
      Buffer.add_char b '.';
      let f = ms mod 1000 in
      if f < 100 then Buffer.add_char b '0';
      if f < 10 then Buffer.add_char b '0';
      Buffer.add_string b (string_of_int f)
    end

(* Byte-identical to
   [Printf.sprintf "from %s by %s; t=%.3f" from_domain by now]; stamped
   on every delivery, so rendered without interpreting a format
   string. *)
let received_stamp ~from_domain ~by now =
  let b = Buffer.create 48 in
  Buffer.add_string b "from ";
  Buffer.add_string b from_domain;
  Buffer.add_string b " by ";
  Buffer.add_string b by;
  Buffer.add_string b "; t=";
  add_t3 b now;
  Buffer.contents b

(* Deliver a message that has fully arrived at this (receiving) MTA. *)
let accept_locally t envelope message =
  let now = Sim.Engine.now t.net.engine in
  let sender = Envelope.sender envelope in
  let stamped =
    Message.add_header message "Received"
      (received_stamp ~from_domain:(Address.domain sender) ~by:t.hostname now)
  in
  List.iter
    (fun rcpt ->
      match t.inbound_filter ~sender ~rcpt stamped with
      | Deliver ->
          if t.retain_mail then Mailbox.deliver t.mailboxes rcpt ~time:now stamped;
          t.delivered <- t.delivered + 1;
          t.on_delivered ~rcpt stamped
      | Intercept -> t.intercepted <- t.intercepted + 1
      | Discard _ -> t.discarded <- t.discarded + 1)
    (Envelope.recipients envelope)

let bounce t envelope message reason =
  Log.warn (fun m ->
      m "%s: bouncing %a: %s" t.hostname Envelope.pp envelope reason);
  t.bounced <- t.bounced + List.length (Envelope.recipients envelope);
  t.dead <- (envelope, reason) :: t.dead;
  t.on_bounce envelope message reason

(* Run one SMTP session from [t] to [dest] for [envelope]/[message];
   returns [Ok ()] or a retryable/permanent failure.

   Messages that round-trip the wire cleanly (every message the
   simulator generates does) take [Server.deliver_direct], which
   computes the dialogue's outcome structurally; the full line-by-line
   RFC 821 exchange remains for messages the fast path cannot prove
   equivalent, and as the reference the fast path is property-tested
   against. *)
let run_session t dest envelope message =
  t.sessions <- t.sessions + 1;
  if dest.down then Error (`Transient "host down (421)")
  else if Server.message_round_trips message then begin
    match Server.deliver_direct ~policy:(session_policy dest) envelope message with
    | `Delivered (env, msg, _rejected) ->
        t.bytes_sent <- t.bytes_sent + Message.size_bytes message;
        accept_locally dest env msg;
        Ok ()
    | `All_rejected rejected ->
        Error
          (`Permanent
             (Client.failure_to_string (Client.All_recipients_rejected rejected)))
    | `Size_exceeded ->
        (* The dialogue's 552 at end of DATA, as the client reports it. *)
        let reply =
          Reply.v 552 "Requested mail action aborted: exceeded storage allocation"
        in
        Error
          (`Permanent
             (Client.failure_to_string (Client.Protocol_error { at = "."; reply })))
  end
  else begin
    let server = Server.create ~hostname:dest.hostname ~policy:(session_policy dest) in
    let transport = Client.of_server server in
    match Client.deliver transport ~hostname:t.hostname envelope message with
    | Ok _outcome ->
        t.bytes_sent <- t.bytes_sent + Message.size_bytes message;
        List.iter
          (fun (env, msg) -> accept_locally dest env msg)
          (Server.take_received server);
        Ok ()
    | Error (Client.Connection_refused reply) ->
        if Reply.is_transient_failure reply then Error (`Transient (Reply.to_line reply))
        else Error (`Permanent (Reply.to_line reply))
    | Error (Client.All_recipients_rejected _ as f) ->
        Error (`Permanent (Client.failure_to_string f))
    | Error (Client.Protocol_error { reply; _ } as f) ->
        if Reply.is_transient_failure reply then
          Error (`Transient (Client.failure_to_string f))
        else Error (`Permanent (Client.failure_to_string f))
  end

(* The retry/backoff/bounce decision, shared verbatim between the
   direct delivery path below and the serving layer's dispatcher
   ([resubmit] is the continuation that re-runs the next attempt —
   [transmit] here, queue re-admission in [Serve.Dispatch]).
   Exhausting the attempts or overflowing the queue bounces the
   message, which (via [on_bounce]) is what refunds the postage. *)
let retry_transient t ~dest_host envelope message ~attempt ~reason ~resubmit =
  let p = t.net.retry in
  if attempt + 1 >= p.max_attempts then begin
    bounce t envelope message reason;
    `Bounced
  end
  else if t.net.retrying >= p.queue_cap then begin
    t.net.retry_overflows <- t.net.retry_overflows + 1;
    bounce t envelope message (reason ^ " (retry queue full)");
    `Bounced
  end
  else begin
    Log.debug (fun m ->
        m "%s: transient failure to host %d (attempt %d): %s" t.hostname
          dest_host (attempt + 1) reason);
    let backoff =
      Float.min
        (p.base_backoff *. (p.backoff_factor ** float_of_int attempt))
        p.backoff_cap
    in
    t.net.retrying <- t.net.retrying + 1;
    ignore
      (Sim.Engine.schedule_after t.net.engine ~delay:backoff (fun () ->
           t.net.retrying <- t.net.retrying - 1;
           resubmit ~attempt:(attempt + 1)));
    `Parked backoff
  end

(* [transmit] asks the link-fault layer (if any) for a verdict before
   opening the session: [`Lost] burns a retry like any 4xx tempfail,
   [`Delayed d] re-runs the same attempt after [d] without consuming
   one.  Transient failures park the envelope in the bounded backoff
   queue of [retry_transient]. *)
let rec transmit t ~dest_host envelope message ~attempt =
  match t.net.link_fault with
  | None -> attempt_session t ~dest_host envelope message ~attempt
  | Some verdict -> (
      match verdict ~src:t.host ~dst:dest_host with
      | `Deliver -> attempt_session t ~dest_host envelope message ~attempt
      | `Delayed d ->
          ignore
            (Sim.Engine.schedule_after t.net.engine ~delay:d (fun () ->
                 attempt_session t ~dest_host envelope message ~attempt))
      | `Lost ->
          park t ~dest_host envelope message ~attempt
            "connection lost (link fault)")

and attempt_session t ~dest_host envelope message ~attempt =
  let dest = find_host t.net dest_host in
  match run_session t dest envelope message with
  | Ok () -> ()
  | Error (`Permanent reason) -> bounce t envelope message reason
  | Error (`Transient reason) ->
      park t ~dest_host envelope message ~attempt reason

and park t ~dest_host envelope message ~attempt reason =
  ignore
    (retry_transient t ~dest_host envelope message ~attempt ~reason
       ~resubmit:(fun ~attempt -> transmit t ~dest_host envelope message ~attempt))

let submit t envelope message =
  t.submitted <- t.submitted + 1;
  (* Stamp a Message-Id on first submission, like any real MTA. *)
  let message =
    match Message.message_id message with
    | Some _ -> message
    | None ->
        t.next_message_id <- t.next_message_id + 1;
        Message.add_header message "Message-Id"
          ("<" ^ string_of_int t.next_message_id ^ "@" ^ t.hostname ^ ">")
  in
  let message = t.outbound_stamp envelope message in
  let route sub_envelope ~domain ~dest message =
    match dest with
    | None -> bounce t sub_envelope message (Printf.sprintf "no MX for %s" domain)
    | Some dest_host when dest_host = t.host ->
        ignore
          (Sim.Engine.schedule_after t.net.engine ~delay:t.net.local_latency
             (fun () -> accept_locally t sub_envelope message))
    | Some dest_host -> (
        match t.net.serving with
        | Some s -> (
            (* Admission happens at submission time so that a full
               queue can push back on the submitter; the session layer
               models all transmission latency itself. *)
            match s.serve_admit ~src:t ~dest_host sub_envelope message with
            | `Queued -> ()
            | `Refused ->
                bounce t sub_envelope message
                  "421 service not available (admission queue full)")
        | None ->
            let delay = t.net.latency t.net.rng in
            ignore
              (Sim.Engine.schedule_after t.net.engine ~delay (fun () ->
                   transmit t ~dest_host sub_envelope message ~attempt:0)))
  in
  match Envelope.recipients envelope with
  | [ rcpt ] ->
      (* Dominant case: one recipient means one destination domain, so
         skip the group-by-domain allocation and resolve by interned
         domain ID. *)
      route envelope ~domain:(Address.domain rcpt)
        ~dest:(Dns.lookup_addr t.net.registry rcpt)
        message
  | _ ->
      let by_domain =
        List.map
          (fun d -> (d, Envelope.recipients_in envelope ~domain:d))
          (Envelope.domains envelope)
      in
      List.iter
        (fun (domain, recipients) ->
          let sub_envelope =
            Envelope.v ~sender:(Envelope.sender envelope) ~recipients
          in
          route sub_envelope ~domain
            ~dest:(Dns.lookup t.net.registry ~domain)
            message)
        by_domain

(* Like [submit], but when a serving layer is installed refuse the
   whole submission — before any counter, stamp or queue moves — if any
   remote destination's admission queue lacks room.  The caller
   (e.g. [Zmail.World]) can then undo its side of the transaction
   (refund the postage) and let the generator re-offer later, which is
   how backpressure propagates instead of teleporting load into
   bounces. *)
let submit_checked t envelope message =
  let has_capacity =
    match t.net.serving with
    | None -> true
    | Some s -> (
        let dest_ok dest =
          match dest with
          | Some dest_host when dest_host <> t.host ->
              s.serve_capacity ~src:t.host ~dest_host
          | Some _ | None -> true (* local, or no MX: bounces, not backpressure *)
        in
        match Envelope.recipients envelope with
        | [ rcpt ] -> dest_ok (Dns.lookup_addr t.net.registry rcpt)
        | _ ->
            List.for_all
              (fun domain -> dest_ok (Dns.lookup t.net.registry ~domain))
              (Envelope.domains envelope))
  in
  if has_capacity then begin
    submit t envelope message;
    `Submitted
  end
  else `Backpressure

(* ---- Serving-layer SPI (see lib/serve) ---------------------------- *)

let open_server t = Server.create ~hostname:t.hostname ~policy:t.policy
let accept_from_remote t envelope message = accept_locally t envelope message
let count_session t = t.sessions <- t.sessions + 1
let note_bytes_sent t n = t.bytes_sent <- t.bytes_sent + n

let stats t =
  {
    submitted = t.submitted;
    sessions = t.sessions;
    delivered = t.delivered;
    intercepted = t.intercepted;
    discarded = t.discarded;
    bounced = t.bounced;
    bytes_sent = t.bytes_sent;
  }

let dead_letters t = List.rev t.dead

module Internal = struct
  let received_stamp = received_stamp
end
