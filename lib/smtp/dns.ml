type host = int

(* Two indexes over the same bindings: the string-keyed table serves
   cold-path lookups by raw domain string, and [by_id] — indexed by the
   domain's interned ID (see Address) — serves the per-delivery hot
   path with a bounds check and an array load, no hashing.  [-1] marks
   an unbound ID. *)
type t = {
  by_name : (string, host) Hashtbl.t;
  mutable by_id : host array;
}

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 64 (-1) }

let ensure t id =
  let n = Array.length t.by_id in
  if id >= n then begin
    let grown = Array.make (Stdlib.max (id + 1) (2 * n)) (-1) in
    Array.blit t.by_id 0 grown 0 n;
    t.by_id <- grown
  end

let register t ~domain host =
  let domain = Address.lowercase_if_needed domain in
  Hashtbl.replace t.by_name domain host;
  let id = Address.intern_domain domain in
  ensure t id;
  t.by_id.(id) <- host

let lookup t ~domain =
  Hashtbl.find_opt t.by_name (Address.lowercase_if_needed domain)

let lookup_id t id =
  if id >= 0 && id < Array.length t.by_id && t.by_id.(id) >= 0 then
    Some t.by_id.(id)
  else None

let lookup_addr t addr = lookup_id t (Address.domain_id addr)

let domains_of t host =
  Hashtbl.fold (fun d h acc -> if h = host then d :: acc else acc) t.by_name []
  |> List.sort String.compare

let size t = Hashtbl.length t.by_name
