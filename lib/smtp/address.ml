type t = { local : string; domain : string; domain_id : int }

(* Process-wide domain intern table.  Domains are drawn from a small
   set (one per simulated ISP plus a handful of test fixtures), while
   addresses are constructed millions of times, so every address
   carries its domain's dense integer ID: routing tables can then be
   arrays indexed by [domain_id] instead of string-keyed hashtables
   (see World).  IDs are content-keyed and process-stable — the same
   lowercase domain string always interns to the same ID, in every
   world of the process — which keeps structural equality of addresses
   aligned with {!equal}. *)
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 256

let intern_names : string array ref = ref [||]

let intern_count = ref 0

let intern_domain domain =
  match Hashtbl.find_opt intern_tbl domain with
  | Some id -> id
  | None ->
      let id = !intern_count in
      Hashtbl.replace intern_tbl domain id;
      let names = !intern_names in
      let n = Array.length names in
      if id >= n then begin
        let grown = Array.make (Stdlib.max 64 (2 * n)) "" in
        Array.blit names 0 grown 0 n;
        intern_names := grown
      end;
      !intern_names.(id) <- domain;
      intern_count := id + 1;
      id

let interned_domains () = !intern_count

let interned_domain id =
  if id < 0 || id >= !intern_count then
    invalid_arg "Address.interned_domain: unknown id";
  !intern_names.(id)

(* [String.lowercase_ascii] always copies; the simulator's generated
   domains are already lowercase, so skip the copy when nothing would
   change. *)
let has_upper s =
  let n = String.length s in
  let rec go i = i < n && ((s.[i] >= 'A' && s.[i] <= 'Z') || go (i + 1)) in
  go 0

let lowercase_if_needed s = if has_upper s then String.lowercase_ascii s else s

let valid_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '+' || c = '-'

let valid_part s = s <> "" && String.for_all valid_char s

let v ~local ~domain =
  if not (valid_part local) then
    invalid_arg (Printf.sprintf "Address.v: invalid local part %S" local);
  if not (valid_part domain) then
    invalid_arg (Printf.sprintf "Address.v: invalid domain %S" domain);
  let domain = lowercase_if_needed domain in
  { local; domain; domain_id = intern_domain domain }

let unsafe_of_parts ~local ~domain ~domain_id = { local; domain; domain_id }

let of_string s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "missing '@' in %S" s)
  | Some i ->
      let local = String.sub s 0 i in
      let domain = String.sub s (i + 1) (String.length s - i - 1) in
      if String.contains domain '@' then Error (Printf.sprintf "multiple '@' in %S" s)
      else if not (valid_part local) then Error (Printf.sprintf "invalid local part in %S" s)
      else if not (valid_part domain) then Error (Printf.sprintf "invalid domain in %S" s)
      else
        let domain = lowercase_if_needed domain in
        Ok { local; domain; domain_id = intern_domain domain }

let of_string_exn s =
  match of_string s with Ok a -> a | Error e -> invalid_arg ("Address.of_string_exn: " ^ e)

let to_string t = t.local ^ "@" ^ t.domain

let local t = t.local
let domain t = t.domain
let domain_id t = t.domain_id

let equal a b = a.domain_id = b.domain_id && String.equal a.local b.local

let compare a b =
  match String.compare a.domain b.domain with
  | 0 -> String.compare a.local b.local
  | c -> c

let hash t = Hashtbl.hash (t.local, t.domain)

let pp ppf t = Format.pp_print_string ppf (to_string t)
