(** RFC-822-style messages: a header block and a body, with the
    [X-Zmail-*] extension headers Zmail rides on.

    Header field names are case-insensitive; insertion order is
    preserved when rendering.  {!to_lines}/{!of_lines} round-trip, and
    the MTA applies SMTP dot-stuffing separately at the session layer. *)

type t

val make :
  from:Address.t ->
  to_:Address.t list ->
  ?subject:string ->
  ?headers:(string * string) list ->
  ?date:float ->
  body:string ->
  unit ->
  t
(** Build a message.  [date] is simulated seconds since the epoch and is
    rendered into a [Date] header.  Extra [headers] follow the standard
    ones. *)

val from : t -> Address.t option
(** Parsed [From] header, if present and well-formed. *)

val recipients : t -> Address.t list
(** Parsed [To] header addresses (comma separated). *)

val subject : t -> string option
val body : t -> string

val header : t -> string -> string option
(** [header t name] is the first value of field [name]
    (case-insensitive). *)

val headers : t -> (string * string) list
(** All fields in order. *)

val add_header : t -> string -> string -> t
(** Functional update appending a field. *)

val size_bytes : t -> int
(** Rendered size. *)

(** The Zmail extension headers (§1.3: Zmail changes no SMTP verb; all
    protocol information rides in the message header block). *)

val zmail_payment_header : string
(** ["X-Zmail-Payment"] — stamped by a compliant sending ISP with the
    e-penny amount attached to the message. *)

val zmail_ack_header : string
(** ["X-Zmail-Ack"] — marks the automatic mailing-list acknowledgment
    (§5); such messages are processed by the ISP and never delivered to
    a human inbox. *)

val zmail_epoch_header : string
(** ["X-Zmail-Epoch"] — the sending ISP's audit sequence number at the
    moment the message was charged.  The receiving ISP uses it to book
    the receive into the matching billing period when its own snapshot
    lags (e.g. after a crash), so the §4.4 audit never blames honest
    ISPs for mail that crossed an epoch boundary. *)

val mark_payment : ?epoch:int -> t -> epennies:int -> t
(** Append the payment header, and — when [epoch] is given — the epoch
    header after it, in one pass over the field list (both are stamped
    on every paid send). *)

val payment : t -> int option
val mark_ack : t -> of_id:string -> t
val ack_of : t -> string option
val mark_epoch : t -> seq:int -> t
val epoch : t -> int option

val message_id : t -> string option

val to_lines : t -> string list
(** Render as header lines, a blank line, then body lines. *)

val of_lines : string list -> (t, string) result
(** Parse the rendering back.  Fails on a malformed header line. *)

val to_string : t -> string
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
