type policy = {
  accept_recipient : Address.t -> (unit, string) result;
  max_recipients : int;
  max_message_bytes : int;
}

let default_policy ~local_domains =
  let local_domains = List.map String.lowercase_ascii local_domains in
  {
    accept_recipient =
      (fun a ->
        if List.mem (Address.domain a) local_domains then Ok ()
        else Error (Address.to_string a));
    max_recipients = 100;
    max_message_bytes = 1024 * 1024;
  }

(* Session phases, in RFC 821 order. *)
type phase =
  | Start  (* awaiting HELO *)
  | Idle  (* greeted, no transaction open *)
  | Have_sender of Address.t
  | Collecting of { sender : Address.t; recipients : Address.t list }
  | In_data of {
      sender : Address.t;
      recipients : Address.t list;
      lines : string list;  (* reversed *)
    }
  | Quit_received

type t = {
  hostname : string;
  policy : policy;
  mutable phase : phase;
  mutable inbox : (Envelope.t * Message.t) list;  (* reversed *)
}

let create ~hostname ~policy = { hostname; policy; phase = Start; inbox = [] }

let greeting t = Reply.service_ready ~hostname:t.hostname

let closed t = t.phase = Quit_received

let reset_transaction t = t.phase <- Idle

let unstuff line =
  (* RFC 821 §4.5.2: a leading '.' was doubled by the sender. *)
  if String.length line >= 2 && line.[0] = '.' && line.[1] = '.' then
    String.sub line 1 (String.length line - 1)
  else line

let finish_data t sender recipients lines =
  let size =
    List.fold_left (fun acc line -> acc + String.length line + 1) 0 lines
  in
  if size > t.policy.max_message_bytes then begin
    t.phase <- Idle;
    Reply.v 552 "Requested mail action aborted: exceeded storage allocation"
  end
  else begin
  let body_and_headers = List.rev lines in
  (match Message.of_lines body_and_headers with
  | Ok message ->
      let envelope = Envelope.v ~sender ~recipients in
      t.inbox <- (envelope, message) :: t.inbox
  | Error _ ->
      (* RFC 821 delivers even messy content; preserve it as an opaque
         body so nothing is silently lost. *)
      let message =
        Message.make ~from:sender ~to_:recipients
          ~body:(String.concat "\n" body_and_headers) ()
      in
      let envelope = Envelope.v ~sender ~recipients in
      t.inbox <- (envelope, message) :: t.inbox);
  t.phase <- Idle;
  Reply.completed
  end

let on_command t command =
  match (t.phase, (command : Command.t)) with
  | Quit_received, _ -> Reply.service_unavailable
  | _, Command.Noop -> Reply.completed
  | _, Command.Quit ->
      t.phase <- Quit_received;
      Reply.closing ~hostname:t.hostname
  | _, Command.Rset ->
      (match t.phase with Start -> () | _ -> reset_transaction t);
      Reply.completed
  | Start, Command.Helo peer ->
      t.phase <- Idle;
      Reply.completed_text (Printf.sprintf "%s greets %s" t.hostname peer)
  | Start, (Command.Mail_from _ | Command.Rcpt_to _ | Command.Data | Command.Vrfy _)
    ->
      Reply.bad_sequence
  | (Idle | Have_sender _ | Collecting _), Command.Helo peer ->
      (* Re-HELO aborts any transaction in progress. *)
      t.phase <- Idle;
      Reply.completed_text (Printf.sprintf "%s greets %s" t.hostname peer)
  | Idle, Command.Mail_from sender ->
      t.phase <- Have_sender sender;
      Reply.completed
  | Idle, (Command.Rcpt_to _ | Command.Data) -> Reply.bad_sequence
  | Have_sender _, Command.Mail_from _ -> Reply.bad_sequence
  | Have_sender sender, Command.Rcpt_to rcpt -> (
      match t.policy.accept_recipient rcpt with
      | Ok () ->
          t.phase <- Collecting { sender; recipients = [ rcpt ] };
          Reply.completed
      | Error who -> Reply.mailbox_unavailable who)
  | Have_sender _, Command.Data -> Reply.bad_sequence
  | Collecting _, Command.Mail_from _ -> Reply.bad_sequence
  | Collecting { sender; recipients }, Command.Rcpt_to rcpt ->
      if List.length recipients >= t.policy.max_recipients then
        Reply.transaction_failed "too many recipients"
      else if List.exists (Address.equal rcpt) recipients then
        (* Idempotent accept: RFC allows repeating a recipient. *)
        Reply.completed
      else (
        match t.policy.accept_recipient rcpt with
        | Ok () ->
            t.phase <- Collecting { sender; recipients = recipients @ [ rcpt ] };
            Reply.completed
        | Error who -> Reply.mailbox_unavailable who)
  | Collecting { sender; recipients }, Command.Data ->
      t.phase <- In_data { sender; recipients; lines = [] };
      Reply.start_mail_input
  | _, Command.Vrfy _ ->
      (* We confirm nothing: the classic anti-harvesting stance. *)
      Reply.completed_text "Cannot VRFY user, but will accept message"
  | In_data _, _ ->
      (* Commands are not interpreted during DATA; handled in on_line. *)
      assert false

let on_line t line =
  match t.phase with
  | In_data { sender; recipients; lines } ->
      if line = "." then Some (finish_data t sender recipients lines)
      else begin
        t.phase <- In_data { sender; recipients; lines = unstuff line :: lines };
        None
      end
  | Start | Idle | Have_sender _ | Collecting _ | Quit_received -> (
      match Command.of_line line with
      | Ok command -> Some (on_command t command)
      | Error _ -> Some Reply.syntax_error)

let received t = List.rev t.inbox

let take_received t =
  let all = List.rev t.inbox in
  t.inbox <- [];
  all

(* ---- Structural fast path ------------------------------------------- *)

(* A message round-trips the wire cleanly when re-parsing its rendered
   lines ([Message.of_lines (Message.to_lines m)]) yields a message
   structurally equal to [m]: header names survive the [':'] split and
   values survive the parser's [String.trim].  Bodies always
   round-trip (dot-stuffing is undone symmetrically, and
   split/concat on ['\n'] is the identity). *)
let header_round_trips (n, v) =
  n <> ""
  && (not (String.contains n ' '))
  && (not (String.contains n ':'))
  && (not (String.contains v '\n'))
  && String.equal (String.trim v) v

let message_round_trips m = List.for_all header_round_trips (Message.headers m)

let deliver_direct ~policy envelope message =
  (* Mirrors the RCPT/DATA decision sequence of the session state
     machine in [on_command]/[finish_data], recipient by recipient in
     envelope order, without rendering the message to lines and
     re-parsing it.  Only valid when [message_round_trips message]
     holds — then the re-parsed message the dialogue would deliver is
     structurally equal to [message] itself.  A qcheck property in
     test_smtp pins this equivalence against the real dialogue. *)
  let accepted_rev, rejected_rev =
    List.fold_left
      (fun (acc, rej) rcpt ->
        if acc = [] then
          match policy.accept_recipient rcpt with
          | Ok () -> ([ rcpt ], rej)
          | Error who -> (acc, (rcpt, Reply.mailbox_unavailable who) :: rej)
        else if List.length acc >= policy.max_recipients then
          (acc, (rcpt, Reply.transaction_failed "too many recipients") :: rej)
        else if List.exists (Address.equal rcpt) acc then
          (* Idempotent repeat: accepted on the wire, not re-added. *)
          (acc, rej)
        else
          match policy.accept_recipient rcpt with
          | Ok () -> (rcpt :: acc, rej)
          | Error who -> (acc, (rcpt, Reply.mailbox_unavailable who) :: rej))
      ([], [])
      (Envelope.recipients envelope)
  in
  let rejected = List.rev rejected_rev in
  if accepted_rev = [] then `All_rejected rejected
  else begin
    (* The dialogue's size check in [finish_data] sums (line + 1) over
       the rendered lines, which is [Message.size_bytes] plus one. *)
    let wire_size = Message.size_bytes message + 1 in
    if wire_size > policy.max_message_bytes then `Size_exceeded
    else
      let envelope' =
        (* Nothing rejected means every recipient was accepted in
           order ([Envelope.v] already forbids duplicates), so the
           rebuilt envelope would equal the original — reuse it. *)
        if rejected = [] then envelope
        else
          Envelope.v
            ~sender:(Envelope.sender envelope)
            ~recipients:(List.rev accepted_rev)
      in
      `Delivered (envelope', message, rejected)
  end
