type value = Int of int | Float of float | Bool of bool | Str of string

type phase = Instant | Begin | End

type event = {
  seq : int;
  time : float;
  comp : string;
  actor : int;
  phase : phase;
  name : string;
  span : int;
  fields : (string * value) list;
}

(* Placeholder for unwritten ring slots, so the ring is a plain
   [event array] and storing a record is one array write with no
   [Some] box.  Never returned: reads are bounded by [stored]. *)
let sentinel =
  { seq = -1; time = 0.; comp = ""; actor = -1; phase = Instant; name = "";
    span = 0; fields = [] }

type t = {
  capacity : int;
  ring : event array;  (* length = max capacity 1; indexed seq-modulo *)
  mutable sinks : (event -> unit) list;
  mutable clock : unit -> float;
  mutable next_seq : int;
  mutable stored : int;  (* events ever stored in the ring *)
  mutable next_span : int;
  inert : bool;  (* the shared [none] tracer: never activatable *)
}

let make ~capacity ~inert =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  {
    capacity;
    ring = Array.make (Stdlib.max capacity 1) sentinel;
    sinks = [];
    clock = (fun () -> 0.);
    next_seq = 0;
    stored = 0;
    next_span = 0;
    inert;
  }

let create ?(capacity = 4096) () = make ~capacity ~inert:false

let none = make ~capacity:0 ~inert:true

let active t = (not t.inert) && (t.capacity > 0 || t.sinks <> [])

let set_clock t clock = t.clock <- clock

let subscribe t sink =
  if t.inert then invalid_arg "Trace.subscribe: cannot subscribe to Trace.none";
  t.sinks <- t.sinks @ [ sink ]

let unsubscribe t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks

let record t ev =
  if t.capacity > 0 then begin
    t.ring.(t.stored mod t.capacity) <- ev;
    t.stored <- t.stored + 1
  end;
  List.iter (fun sink -> sink ev) t.sinks

let push t ~actor ~fields ~comp ~phase ~span name =
  let ev =
    {
      seq = t.next_seq;
      time = t.clock ();
      comp;
      actor;
      phase;
      name;
      span;
      fields;
    }
  in
  t.next_seq <- t.next_seq + 1;
  record t ev

let emit t ?(actor = -1) ?(fields = []) ~comp name =
  if active t then push t ~actor ~fields ~comp ~phase:Instant ~span:0 name

let span_begin t ?(actor = -1) ?(fields = []) ~comp name =
  if active t then begin
    t.next_span <- t.next_span + 1;
    let span = t.next_span in
    push t ~actor ~fields ~comp ~phase:Begin ~span name;
    span
  end
  else 0

let span_end t ?(actor = -1) ?(fields = []) ~span ~comp name =
  if active t then push t ~actor ~fields ~comp ~phase:End ~span name

let events t =
  if t.capacity = 0 then []
  else begin
    let n = Stdlib.min t.stored t.capacity in
    let first = t.stored - n in
    List.init n (fun i -> t.ring.((first + i) mod t.capacity))
  end

let recent t n =
  let all = events t in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let emitted t = t.next_seq

let dropped t =
  if t.capacity = 0 then 0 else Stdlib.max 0 (t.stored - t.capacity)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) sentinel;
  t.stored <- 0

(* Only the monotone emission counters are captured: ring contents and
   capacity are a front-end presentation choice (the same run traced
   into a 512-slot ring and a 256k-slot ring is still the same run),
   but [next_seq]/[next_span] must line up for the exported JSONL of a
   resumed run to continue the straight-through run's numbering. *)
let encode_state w t =
  Persist.Codec.W.int w t.next_seq;
  Persist.Codec.W.int w t.next_span

let restore_state r t =
  if t.inert then Persist.Codec.R.corrupt r "cannot restore into Trace.none";
  t.next_seq <- Persist.Codec.R.int r;
  t.next_span <- Persist.Codec.R.int r

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s

let pp_event ppf ev =
  let phase =
    match ev.phase with
    | Instant -> ""
    | Begin -> Format.sprintf "[>%d] " ev.span
    | End -> Format.sprintf "[<%d] " ev.span
  in
  let actor =
    if ev.actor < 0 then ev.comp else Format.sprintf "%s/%d" ev.comp ev.actor
  in
  Format.fprintf ppf "[%12.3fs] %-10s %s%s" ev.time actor phase ev.name;
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v)
    ev.fields
