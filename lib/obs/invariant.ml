type violation = {
  time : float;
  check : string;
  detail : string;
  event : Trace.event;
  context : Trace.event list;
}

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>invariant %S violated at t=%.3fs: %s@,offending event:@,  %a@]"
    v.check v.time v.detail Trace.pp_event v.event;
  match v.context with
  | [] -> ()
  | ctx ->
      Format.fprintf ppf "@,last %d traced events:" (List.length ctx);
      List.iter (fun ev -> Format.fprintf ppf "@,  %a" Trace.pp_event ev) ctx

type t = {
  name : string;
  mutable checks : int;
  mutable detach : unit -> unit;
}

let name t = t.name
let checks t = t.checks
let detach t = t.detach ()

let fresh name = { name; checks = 0; detach = (fun () -> ()) }

let attach trace t sink =
  Trace.subscribe trace sink;
  t.detach <- (fun () -> Trace.unsubscribe trace sink);
  t

let violate ~trace ~context t (ev : Trace.event) fmt =
  Format.kasprintf
    (fun detail ->
      raise
        (Violation
           {
             time = ev.Trace.time;
             check = t.name;
             detail;
             event = ev;
             context = Trace.recent trace context;
           }))
    fmt

let int_field (ev : Trace.event) key =
  match List.assoc_opt key ev.Trace.fields with
  | Some (Trace.Int i) -> Some i
  | _ -> None

let bool_field (ev : Trace.event) key =
  match List.assoc_opt key ev.Trace.fields with
  | Some (Trace.Bool b) -> Some b
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Zero-sum conservation (§1.2)                                        *)
(* ------------------------------------------------------------------ *)

let attach_zero_sum ?(context = 32) trace ~initial =
  let t = fresh "zero-sum" in
  let expected = ref initial in
  let in_flight = ref 0 in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name) with
    | "isp", "charge" ->
        decr expected;
        incr in_flight
    | "isp", "settle" ->
        incr expected;
        decr in_flight
    | "isp", "refund" ->
        incr expected;
        decr in_flight
    | "isp", "mint" -> incr expected
    | "isp", "buy_apply" ->
        if bool_field ev "accepted" = Some true then
          expected := !expected + Option.value ~default:0 (int_field ev "amount")
    | "isp", "sell_apply" ->
        expected := !expected - Option.value ~default:0 (int_field ev "taken")
    | "obs", "checkpoint" -> (
        t.checks <- t.checks + 1;
        (match int_field ev "total" with
        | Some total when total <> !expected ->
            violate ~trace ~context t ev
              "system holds %d e-pennies but the event stream accounts for %d \
               (delta %+d)"
              total !expected (total - !expected)
        | Some _ | None -> ());
        if bool_field ev "quiescent" = Some true && !in_flight <> 0 then
          violate ~trace ~context t ev
            "%d paid messages still in flight at quiescence" !in_flight)
    | _ -> ()
  in
  attach trace t sink

(* ------------------------------------------------------------------ *)
(* Credit antisymmetry (§4.4)                                          *)
(* ------------------------------------------------------------------ *)

type pair_flow = { mutable sends : int; mutable recvs : int; mutable flying : int }

let attach_antisymmetry ?(context = 32) trace ~honest =
  let t = fresh "credit-antisymmetry" in
  let pairs : (int * int, pair_flow) Hashtbl.t = Hashtbl.create 16 in
  let flow a b =
    match Hashtbl.find_opt pairs (a, b) with
    | Some f -> f
    | None ->
        let f = { sends = 0; recvs = 0; flying = 0 } in
        Hashtbl.replace pairs (a, b) f;
        f
  in
  let is_honest i = i >= 0 && i < Array.length honest && honest.(i) in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name) with
    | "credit", ("send" | "recv" | "cancel") -> (
        match int_field ev "peer" with
        | None -> ()
        | Some peer ->
            let owner = ev.Trace.actor in
            if is_honest owner && is_honest peer then begin
              t.checks <- t.checks + 1;
              (match ev.Trace.name with
              | "send" ->
                  let f = flow owner peer in
                  f.sends <- f.sends + 1;
                  f.flying <- f.flying + 1
              | "recv" ->
                  (* Receiver [owner] books a message from [peer]: the
                     flow direction is peer -> owner. *)
                  let f = flow peer owner in
                  f.recvs <- f.recvs + 1;
                  f.flying <- f.flying - 1;
                  if f.flying < 0 then
                    violate ~trace ~context t ev
                      "isp %d booked %d receives from isp %d against only %d \
                       sends — a double credit breaks credit_%d[%d] + \
                       credit_%d[%d] = 0"
                      owner f.recvs peer f.sends owner peer peer owner
              | "cancel" ->
                  let f = flow owner peer in
                  f.sends <- f.sends - 1;
                  f.flying <- f.flying - 1;
                  if f.flying < 0 || f.sends < 0 then
                    violate ~trace ~context t ev
                      "isp %d cancelled a send toward isp %d that the stream \
                       never recorded"
                      owner peer
              | _ -> ())
            end)
    | "obs", "checkpoint" ->
        if bool_field ev "quiescent" = Some true then begin
          t.checks <- t.checks + 1;
          Hashtbl.iter
            (fun (a, b) f ->
              if f.flying <> 0 then
                violate ~trace ~context t ev
                  "pair (%d,%d) has %d credits in flight at quiescence" a b
                  f.flying)
            pairs
        end
    | _ -> ()
  in
  attach trace t sink

(* ------------------------------------------------------------------ *)
(* Exactly-once buy/sell settlement (E16)                              *)
(* ------------------------------------------------------------------ *)

let attach_exactly_once ?(context = 32) trace =
  let t = fresh "exactly-once" in
  let applied : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let once side ~isp ~nonce ev =
    t.checks <- t.checks + 1;
    let key = (side, isp, nonce) in
    if Hashtbl.mem applied key then
      violate ~trace ~context t ev
        "%s applied twice for isp %d nonce %#x — a duplicate slipped past the \
         reply cache / nonce checks"
        side isp nonce;
    Hashtbl.replace applied key ()
  in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name) with
    | "bank", (("buy" | "sell") as op) -> (
        match (int_field ev "isp", int_field ev "nonce", bool_field ev "replay") with
        | Some isp, Some nonce, Some false -> once ("bank " ^ op) ~isp ~nonce ev
        | _ -> ())
    | "isp", (("buy_apply" | "sell_apply") as op) -> (
        match int_field ev "nonce" with
        | Some nonce -> once ("isp " ^ op) ~isp:ev.Trace.actor ~nonce ev
        | None -> ())
    | _ -> ()
  in
  attach trace t sink
