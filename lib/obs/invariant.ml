type violation = {
  time : float;
  check : string;
  detail : string;
  event : Trace.event;
  context : Trace.event list;
}

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>invariant %S violated at t=%.3fs: %s@,offending event:@,  %a@]"
    v.check v.time v.detail Trace.pp_event v.event;
  match v.context with
  | [] -> ()
  | ctx ->
      Format.fprintf ppf "@,last %d traced events:" (List.length ctx);
      List.iter (fun ev -> Format.fprintf ppf "@,  %a" Trace.pp_event ev) ctx

type t = {
  name : string;
  mutable checks : int;
  mutable detach : unit -> unit;
}

let name t = t.name
let checks t = t.checks
let detach t = t.detach ()

let fresh name = { name; checks = 0; detach = (fun () -> ()) }

let attach trace t sink =
  Trace.subscribe trace sink;
  t.detach <- (fun () -> Trace.unsubscribe trace sink);
  t

let violate ~trace ~context t (ev : Trace.event) fmt =
  Format.kasprintf
    (fun detail ->
      raise
        (Violation
           {
             time = ev.Trace.time;
             check = t.name;
             detail;
             event = ev;
             context = Trace.recent trace context;
           }))
    fmt

let int_field (ev : Trace.event) key =
  match List.assoc_opt key ev.Trace.fields with
  | Some (Trace.Int i) -> Some i
  | _ -> None

let bool_field (ev : Trace.event) key =
  match List.assoc_opt key ev.Trace.fields with
  | Some (Trace.Bool b) -> Some b
  | _ -> None

let int_list_field (ev : Trace.event) key =
  match List.assoc_opt key ev.Trace.fields with
  | Some (Trace.Str "") -> Some []
  | Some (Trace.Str s) ->
      let parts = String.split_on_char ',' s in
      let ints = List.filter_map int_of_string_opt parts in
      if List.length ints = List.length parts then Some ints else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Zero-sum conservation (§1.2)                                        *)
(* ------------------------------------------------------------------ *)

let attach_zero_sum ?(context = 32) trace ~initial =
  let t = fresh "zero-sum" in
  let expected = ref initial in
  let in_flight = ref 0 in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name) with
    | "isp", "charge" ->
        decr expected;
        incr in_flight
    | "isp", "settle" ->
        incr expected;
        decr in_flight
    | "isp", "refund" ->
        incr expected;
        decr in_flight
    | "isp", "mint" -> incr expected
    | "isp", "buy_apply" ->
        if bool_field ev "accepted" = Some true then
          expected := !expected + Option.value ~default:0 (int_field ev "amount")
    | "isp", "sell_apply" ->
        expected := !expected - Option.value ~default:0 (int_field ev "taken")
    | "obs", "checkpoint" -> (
        t.checks <- t.checks + 1;
        (match int_field ev "total" with
        | Some total when total <> !expected ->
            violate ~trace ~context t ev
              "system holds %d e-pennies but the event stream accounts for %d \
               (delta %+d)"
              total !expected (total - !expected)
        | Some _ | None -> ());
        if bool_field ev "quiescent" = Some true && !in_flight <> 0 then
          violate ~trace ~context t ev
            "%d paid messages still in flight at quiescence" !in_flight)
    | _ -> ()
  in
  attach trace t sink

(* ------------------------------------------------------------------ *)
(* Credit antisymmetry (§4.4)                                          *)
(* ------------------------------------------------------------------ *)

type pair_flow = { mutable sends : int; mutable recvs : int; mutable flying : int }

let attach_antisymmetry ?(context = 32) trace ~honest =
  let t = fresh "credit-antisymmetry" in
  let pairs : (int * int, pair_flow) Hashtbl.t = Hashtbl.create 16 in
  let flow a b =
    match Hashtbl.find_opt pairs (a, b) with
    | Some f -> f
    | None ->
        let f = { sends = 0; recvs = 0; flying = 0 } in
        Hashtbl.replace pairs (a, b) f;
        f
  in
  let is_honest i = i >= 0 && i < Array.length honest && honest.(i) in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name) with
    | "credit", ("send" | "recv" | "cancel") -> (
        match int_field ev "peer" with
        | None -> ()
        | Some peer ->
            let owner = ev.Trace.actor in
            if is_honest owner && is_honest peer then begin
              t.checks <- t.checks + 1;
              (match ev.Trace.name with
              | "send" ->
                  let f = flow owner peer in
                  f.sends <- f.sends + 1;
                  f.flying <- f.flying + 1
              | "recv" ->
                  (* Receiver [owner] books a message from [peer]: the
                     flow direction is peer -> owner. *)
                  let f = flow peer owner in
                  f.recvs <- f.recvs + 1;
                  f.flying <- f.flying - 1;
                  if f.flying < 0 then
                    violate ~trace ~context t ev
                      "isp %d booked %d receives from isp %d against only %d \
                       sends — a double credit breaks credit_%d[%d] + \
                       credit_%d[%d] = 0"
                      owner f.recvs peer f.sends owner peer peer owner
              | "cancel" ->
                  let f = flow owner peer in
                  f.sends <- f.sends - 1;
                  f.flying <- f.flying - 1;
                  if f.flying < 0 || f.sends < 0 then
                    violate ~trace ~context t ev
                      "isp %d cancelled a send toward isp %d that the stream \
                       never recorded"
                      owner peer
              | _ -> ())
            end)
    | "obs", "checkpoint" ->
        if bool_field ev "quiescent" = Some true then begin
          t.checks <- t.checks + 1;
          Hashtbl.iter
            (fun (a, b) f ->
              if f.flying <> 0 then
                violate ~trace ~context t ev
                  "pair (%d,%d) has %d credits in flight at quiescence" a b
                  f.flying)
            pairs
        end
    | _ -> ()
  in
  attach trace t sink

(* ------------------------------------------------------------------ *)
(* Cycle-residue accounting (§4.4 collusion attribution)               *)
(* ------------------------------------------------------------------ *)

(* Consumes the bank's closing audit span event.  The lied volume of a
   round is what its violations sum to in absolute terms; the ring
   volume is the part the cycle detector attributed to collusion
   rings.  The checker fails fast — with the tracer's ring-buffer
   context — when attribution stops adding up (ring volume exceeding
   lied volume, rings without members, a center both cleared and
   ring-convicted) or when a ring conviction lands on an ISP declared
   honest: the one outcome the cycle detector must never produce. *)
let attach_cycle_residue ?(context = 32) trace ~honest =
  let t = fresh "cycle-residue" in
  let is_honest i = i >= 0 && i < Array.length honest && honest.(i) in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name, ev.Trace.phase) with
    | "bank", "audit", Trace.End ->
        t.checks <- t.checks + 1;
        let geti key = Option.value ~default:0 (int_field ev key) in
        let rings = geti "rings"
        and ring_volume = geti "ring_volume"
        and lied_volume = geti "lied_volume" in
        if ring_volume > lied_volume then
          violate ~trace ~context t ev
            "rings account for volume %d but the round only lied %d"
            ring_volume lied_volume;
        if rings = 0 && ring_volume <> 0 then
          violate ~trace ~context t ev
            "no rings found yet ring volume is %d" ring_volume;
        (* Only the cycle detector's own convictions ([ring_isps]) are
           held to the soundness bar: strict-majority offenders can be
           transient artifacts of in-flight traffic at the snapshot
           (E20's serving worlds), which is §4.4's pre-existing
           ambiguity, not a ring-attribution bug. *)
        let ring_members =
          Option.value ~default:[] (int_list_field ev "ring_isps")
        in
        let cleared =
          Option.value ~default:[] (int_list_field ev "cleared_isps")
        in
        if rings > 0 && List.length ring_members < 2 then
          violate ~trace ~context t ev
            "%d ring(s) found but only %d ring member(s) — a ring has at \
             least two members"
            rings (List.length ring_members);
        List.iter
          (fun i ->
            if List.mem i ring_members then
              violate ~trace ~context t ev
                "isp %d both cleared and ring-convicted in one round" i)
          cleared;
        List.iter
          (fun i ->
            if is_honest i then
              violate ~trace ~context t ev
                "honest isp %d ring-convicted — cycle attribution framed a \
                 compliant non-cheating kernel"
                i)
          ring_members
    | _ -> ()
  in
  attach trace t sink

(* ------------------------------------------------------------------ *)
(* Exactly-once buy/sell settlement (E16)                              *)
(* ------------------------------------------------------------------ *)

let attach_exactly_once ?(context = 32) trace =
  let t = fresh "exactly-once" in
  let applied : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let once side ~isp ~nonce ev =
    t.checks <- t.checks + 1;
    let key = (side, isp, nonce) in
    if Hashtbl.mem applied key then
      violate ~trace ~context t ev
        "%s applied twice for isp %d nonce %#x — a duplicate slipped past the \
         reply cache / nonce checks"
        side isp nonce;
    Hashtbl.replace applied key ()
  in
  let sink (ev : Trace.event) =
    match (ev.Trace.comp, ev.Trace.name) with
    | "bank", (("buy" | "sell") as op) -> (
        match (int_field ev "isp", int_field ev "nonce", bool_field ev "replay") with
        | Some isp, Some nonce, Some false -> once ("bank " ^ op) ~isp ~nonce ev
        | _ -> ())
    | "isp", (("buy_apply" | "sell_apply") as op) -> (
        match int_field ev "nonce" with
        | Some nonce -> once ("isp " ^ op) ~isp:ev.Trace.actor ~nonce ev
        | None -> ())
    | _ -> ()
  in
  attach trace t sink
