(** Metric registry.

    A registry names every counter, gauge, summary, histogram and
    series a component exposes, so the whole set can be enumerated and
    dumped as one table instead of each module printing its own ad-hoc
    numbers.  Instruments are the ones from {!Sim.Stats}; the registry
    only owns the naming and the dump.

    [counter]/[summary]/[histogram]/[series] are get-or-create: asking
    twice for the same name returns the same instrument (and raises
    [Invalid_argument] if the name is already bound to a different
    kind).  Existing instruments created elsewhere can be adopted with
    {!adopt_counter}. *)

type t

val create : unit -> t

val counter : t -> string -> Sim.Stats.Counter.t
(** Get or create the named counter. *)

val adopt_counter : t -> ?name:string -> Sim.Stats.Counter.t -> unit
(** Register an existing counter under [name] (default: the counter's
    own label).  Re-adopting the same counter under the same name is a
    no-op. *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register a gauge: a closure sampled at dump time.  Registering the
    same name again replaces the closure. *)

val summary : t -> string -> Sim.Stats.Summary.t

val histogram : t -> string -> lo:float -> hi:float -> bins:int -> Sim.Stats.Histogram.t
(** Get or create the named histogram over [bins] equal-width bins
    spanning [lo, hi].  Callers binning a log-transformed value (the
    serving-path latency histograms record [log10 latency]) get
    log-spaced buckets in the original unit. *)

val series : t -> string -> Sim.Stats.Series.t

val names : t -> string list
(** All registered names, sorted. *)

val to_table : t -> Sim.Table.t
(** One row per metric: name, kind, value, detail (mean for summaries,
    p50/p99/p999 for histograms, last sample for series).

    Histogram quantiles are estimated by linear interpolation inside
    the bin holding the target rank, so the error bound is half the
    bin width: with [bins] buckets over [lo, hi] a quantile is within
    [(hi -. lo) /. (2. *. float bins)] of the true order statistic (in
    the binned unit — for a [log10]-binned histogram that is a
    relative error of [10 ** (width /. 2.) - 1.] in the original
    unit, e.g. ~6% for the serving path's 0.05-decade bins).  Tail
    quantiles such as p999 are only as sharp as the population: below
    ~1000 samples p999 rides the maximum observation's bin. *)

val print : t -> unit
(** [Sim.Table.print] of {!to_table}. *)
