(** Trace exporters: JSONL, Chrome [trace_event], human-readable.

    The JSONL form is one self-describing object per line:

    {v
    {"seq":3,"t":864.5,"comp":"isp","actor":2,"ph":"I","name":"charge",
     "span":0,"fields":{"user":17,"dest":0}}
    v}

    [ph] is ["I"] (instant), ["B"] or ["E"] (span begin/end).  Numbers
    are printed so they re-parse exactly — {!event_of_json} inverts
    {!event_to_json} (the round trip is property-tested).

    The Chrome form is a single JSON object [{"traceEvents":[...]}] in
    the Trace Event Format, loadable by [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}.  Simulated seconds map to
    trace microseconds ([ts = time * 1e6]); instants use phase ["i"]
    with thread scope, spans use async phases ["b"]/["e"] keyed by the
    span id; the actor becomes the [tid] (shifted by one so actor [-1]
    — bank/world scope — lands on tid [0], which is name-tagged by
    metadata events). *)

val event_to_json : Trace.event -> string
(** One-line JSON encoding (no trailing newline). *)

val event_of_json : string -> (Trace.event, string) result
(** Parse a line produced by {!event_to_json}. *)

val to_jsonl : Trace.event list -> string
(** Newline-terminated concatenation of {!event_to_json} lines. *)

val of_jsonl : string -> (Trace.event list, string) result
(** Parse a JSONL document (blank lines ignored). *)

val to_chrome : Trace.event list -> string
(** Chrome [trace_event] JSON document. *)

val write_file :
  path:string -> format:[ `Jsonl | `Chrome ] -> Trace.event list -> unit
(** Write the events to [path] in the given format. *)

val pp_events : Format.formatter -> Trace.event list -> unit
(** Human-readable dump, one event per line (via {!Trace.pp_event}). *)
