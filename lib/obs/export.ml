(* JSON encoding is hand-rolled: the repo avoids external dependencies,
   and the subset needed (flat objects of ints/floats/bools/strings) is
   small enough to print and parse exactly. *)

let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20

let escape_string buf s =
  Buffer.add_char buf '"';
  (* Fast path: most strings are clean identifiers. *)
  if not (String.exists needs_escape s) then Buffer.add_string buf s
  else
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
  Buffer.add_char buf '"'

(* The C primitive behind [string_of_float]: a single snprintf, without
   the [Printf] format-interpretation overhead.  Exporting a trace
   prints one float per event, so this is on the hot path. *)
external format_float : string -> float -> string = "caml_format_float"

(* Print a float so [float_of_string] recovers it exactly.  Prefer the
   short form when it round-trips; force a marker so the JSON number
   re-parses as a float, not an int. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then
    string_of_int (int_of_float f) ^ ".0"
  else
    let short = format_float "%.12g" f in
    if float_of_string short = f then short
    else
      let s = format_float "%.17g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let add_value buf = function
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> Buffer.add_string buf (float_repr f)
  | Trace.Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Trace.Str s -> escape_string buf s

let phase_code = function
  | Trace.Instant -> "I"
  | Trace.Begin -> "B"
  | Trace.End -> "E"

let add_fields buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape_string buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    fields;
  Buffer.add_char buf '}'

(* Serializers append into a shared document buffer: a 30k-event trace
   goes through here per event, so no intermediate strings. *)
let add_event_json buf (ev : Trace.event) =
  Buffer.add_string buf "{\"seq\":";
  Buffer.add_string buf (string_of_int ev.seq);
  Buffer.add_string buf ",\"t\":";
  Buffer.add_string buf (float_repr ev.time);
  Buffer.add_string buf ",\"comp\":";
  escape_string buf ev.comp;
  Buffer.add_string buf ",\"actor\":";
  Buffer.add_string buf (string_of_int ev.actor);
  Buffer.add_string buf ",\"ph\":\"";
  Buffer.add_string buf (phase_code ev.phase);
  Buffer.add_string buf "\",\"name\":";
  escape_string buf ev.name;
  Buffer.add_string buf ",\"span\":";
  Buffer.add_string buf (string_of_int ev.span);
  Buffer.add_string buf ",\"fields\":";
  add_fields buf ev.fields;
  Buffer.add_char buf '}'

let event_to_json ev =
  let buf = Buffer.create 128 in
  add_event_json buf ev;
  Buffer.contents buf

let to_jsonl events =
  let buf = Buffer.create 65536 in
  List.iter
    (fun ev ->
      add_event_json buf ev;
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* --- Minimal JSON parser (objects, strings, numbers, booleans) --- *)

exception Parse_error of string

type token =
  | Lbrace
  | Rbrace
  | Colon
  | Comma
  | Tstring of string
  | Tint of int
  | Tfloat of float
  | Tbool of bool

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let fail msg = raise (Parse_error msg)

let lex_string lx =
  (* lx.pos is on the opening quote *)
  lx.pos <- lx.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    if lx.pos >= String.length lx.src then fail "unterminated string";
    let c = lx.src.[lx.pos] in
    lx.pos <- lx.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        if lx.pos >= String.length lx.src then fail "dangling escape";
        let e = lx.src.[lx.pos] in
        lx.pos <- lx.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if lx.pos + 4 > String.length lx.src then fail "short \\u escape";
            let hex = String.sub lx.src lx.pos 4 in
            lx.pos <- lx.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            if code > 0xff then fail "non-latin \\u escape unsupported";
            Buffer.add_char buf (Char.chr code)
        | _ -> fail "unknown escape");
        go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let lex_number lx =
  let start = lx.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while lx.pos < String.length lx.src && is_num_char lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    try Tfloat (float_of_string s) with _ -> fail ("bad number " ^ s)
  else try Tint (int_of_string s) with _ -> fail ("bad number " ^ s)

let next_token lx =
  let rec skip () =
    match peek lx with
    | Some (' ' | '\t' | '\n' | '\r') ->
        lx.pos <- lx.pos + 1;
        skip ()
    | _ -> ()
  in
  skip ();
  match peek lx with
  | None -> fail "unexpected end of input"
  | Some '{' -> lx.pos <- lx.pos + 1; Lbrace
  | Some '}' -> lx.pos <- lx.pos + 1; Rbrace
  | Some ':' -> lx.pos <- lx.pos + 1; Colon
  | Some ',' -> lx.pos <- lx.pos + 1; Comma
  | Some '"' -> Tstring (lex_string lx)
  | Some 't' ->
      if lx.pos + 4 <= String.length lx.src
         && String.sub lx.src lx.pos 4 = "true"
      then (lx.pos <- lx.pos + 4; Tbool true)
      else fail "bad literal"
  | Some 'f' ->
      if lx.pos + 5 <= String.length lx.src
         && String.sub lx.src lx.pos 5 = "false"
      then (lx.pos <- lx.pos + 5; Tbool false)
      else fail "bad literal"
  | Some ('-' | '0' .. '9') -> lex_number lx
  | Some c -> fail (Printf.sprintf "unexpected character %C" c)

type json_value = Jint of int | Jfloat of float | Jbool of bool | Jstr of string

(* Parse a flat object of scalar values; [nested] allows one level of
   sub-object (for "fields"). *)
let rec parse_object lx : (string * [ `Scalar of json_value | `Obj of (string * json_value) list ]) list =
  (match next_token lx with Lbrace -> () | _ -> fail "expected '{'");
  let rec members acc =
    match next_token lx with
    | Rbrace -> List.rev acc
    | Tstring key -> (
        (match next_token lx with Colon -> () | _ -> fail "expected ':'");
        let value =
          match peek_nonspace lx with
          | Some '{' -> `Obj (parse_flat lx)
          | _ -> (
              match next_token lx with
              | Tstring s -> `Scalar (Jstr s)
              | Tint i -> `Scalar (Jint i)
              | Tfloat f -> `Scalar (Jfloat f)
              | Tbool b -> `Scalar (Jbool b)
              | _ -> fail "expected scalar value")
        in
        match next_token lx with
        | Comma -> members ((key, value) :: acc)
        | Rbrace -> List.rev ((key, value) :: acc)
        | _ -> fail "expected ',' or '}'")
    | _ -> fail "expected member key"
  in
  members []

and peek_nonspace lx =
  let save = lx.pos in
  let rec skip () =
    match peek lx with
    | Some (' ' | '\t' | '\n' | '\r') ->
        lx.pos <- lx.pos + 1;
        skip ()
    | c -> c
  in
  let c = skip () in
  lx.pos <- save;
  c

and parse_flat lx =
  List.map
    (fun (k, v) ->
      match v with
      | `Scalar s -> (k, s)
      | `Obj _ -> fail "unexpected nested object")
    (parse_object lx)

let value_of_json = function
  | Jint i -> Trace.Int i
  | Jfloat f -> Trace.Float f
  | Jbool b -> Trace.Bool b
  | Jstr s -> Trace.Str s

let event_of_json line =
  try
    let lx = { src = line; pos = 0 } in
    let members = parse_object lx in
    let scalar key =
      match List.assoc_opt key members with
      | Some (`Scalar v) -> v
      | Some (`Obj _) -> fail (key ^ ": expected scalar")
      | None -> fail ("missing key " ^ key)
    in
    let int key =
      match scalar key with Jint i -> i | _ -> fail (key ^ ": expected int")
    in
    let str key =
      match scalar key with Jstr s -> s | _ -> fail (key ^ ": expected string")
    in
    let time =
      match scalar "t" with
      | Jfloat f -> f
      | Jint i -> float_of_int i
      | _ -> fail "t: expected number"
    in
    let phase =
      match str "ph" with
      | "I" -> Trace.Instant
      | "B" -> Trace.Begin
      | "E" -> Trace.End
      | p -> fail ("unknown phase " ^ p)
    in
    let fields =
      match List.assoc_opt "fields" members with
      | Some (`Obj kvs) -> List.map (fun (k, v) -> (k, value_of_json v)) kvs
      | Some (`Scalar _) -> fail "fields: expected object"
      | None -> []
    in
    Ok
      {
        Trace.seq = int "seq";
        time;
        comp = str "comp";
        actor = int "actor";
        phase;
        name = str "name";
        span = int "span";
        fields;
      }
  with Parse_error msg -> Error msg

let of_jsonl doc =
  let lines = String.split_on_char '\n' doc in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go acc rest
        else (
          match event_of_json line with
          | Ok ev -> go (ev :: acc) rest
          | Error e -> Error e)
  in
  go [] lines

(* --- Chrome trace_event format --- *)

let chrome_tid actor = if actor < 0 then 0 else actor + 1

let add_chrome_fields buf fields =
  Buffer.add_string buf "\"args\":";
  add_fields buf fields

let add_chrome_event buf (ev : Trace.event) =
  let ts = ev.time *. 1e6 in
  let common ph =
    Buffer.add_string buf "{\"name\":";
    escape_string buf ev.name;
    Buffer.add_string buf ",\"cat\":";
    escape_string buf ev.comp;
    Buffer.add_string buf ",\"ph\":\"";
    Buffer.add_string buf ph;
    Buffer.add_string buf "\",\"ts\":";
    Buffer.add_string buf (float_repr ts);
    Buffer.add_string buf ",\"pid\":0,\"tid\":";
    Buffer.add_string buf (string_of_int (chrome_tid ev.actor));
    Buffer.add_char buf ','
  in
  let span_id () =
    Buffer.add_string buf "\"id\":";
    Buffer.add_string buf (string_of_int ev.span);
    Buffer.add_char buf ','
  in
  (match ev.phase with
  | Trace.Instant ->
      common "i";
      Buffer.add_string buf "\"s\":\"t\","
  | Trace.Begin ->
      common "b";
      span_id ()
  | Trace.End ->
      common "e";
      span_id ());
  add_chrome_fields buf ev.fields;
  Buffer.add_char buf '}'

let to_chrome events =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  (* Name the process and each actor's pseudo-thread. *)
  sep ();
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"zmail-sim\"}}";
  let tids =
    List.sort_uniq compare (List.map (fun ev -> ev.Trace.actor) events)
  in
  List.iter
    (fun actor ->
      let label = if actor < 0 then "bank+world" else Printf.sprintf "isp %d" actor in
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%s}}"
           (chrome_tid actor)
           (let b = Buffer.create 16 in
            escape_string b label;
            Buffer.contents b)))
    tids;
  List.iter
    (fun ev ->
      sep ();
      add_chrome_event buf ev)
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_file ~path ~format events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match format with
      | `Jsonl -> output_string oc (to_jsonl events)
      | `Chrome -> output_string oc (to_chrome events))

let pp_events ppf events =
  List.iter (fun ev -> Format.fprintf ppf "%a@." Trace.pp_event ev) events
