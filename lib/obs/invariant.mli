(** Online invariant checkers.

    Each checker subscribes to a {!Trace.t} and maintains a small
    incremental model of the protocol from the event stream; the moment
    an event contradicts an invariant the checker raises {!Violation}
    carrying the offending event and the most recent ring-buffer
    context, so a chaos run fails at the first inconsistent action
    instead of producing a wrong number at the end.

    The checkers consume the event taxonomy documented in DESIGN.md
    §Observability (emitted by [Zmail.Isp], [Zmail.Bank],
    [Zmail.Credit] and [Zmail.World]):

    - {b zero-sum} (§1.2, E2): replays every money movement
      ([isp/charge], [isp/settle], [isp/refund], [isp/buy_apply],
      [isp/sell_apply], [isp/mint]) into an expected system total and
      compares it against the measured total carried by each
      [obs/checkpoint] event.  At a quiescent checkpoint it also
      requires zero e-pennies in flight.
    - {b credit antisymmetry} (§4.4, E3/E4): tracks cumulative
      sends/receives per ordered pair of {e honest} ISPs from
      [credit/send], [credit/recv] and [credit/cancel]; a receive or
      cancellation without a matching send — a double credit — trips
      immediately.  Pairs involving a cheating ISP are excluded: their
      books are {e supposed} to disagree (that is what the audit
      detects).
    - {b exactly-once} (E16): every non-replay [bank/buy]/[bank/sell]
      and every [isp/buy_apply]/[isp/sell_apply] must occur at most
      once per (ISP, nonce) despite duplication and retransmission on
      the bank link.
    - {b cycle-residue} (§4.4 collusion, E21): the closing [bank/audit]
      span must account for its lied volume consistently between rings
      and residue, and never convict an honest ISP. *)

type violation = {
  time : float;  (** simulated time of the offending event *)
  check : string;  (** which checker fired *)
  detail : string;
  event : Trace.event;  (** the event that violated the invariant *)
  context : Trace.event list;
      (** most recent ring-buffer events, oldest first (empty when the
          tracer records nothing) *)
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit
(** Multi-line report: the verdict, then the context dump. *)

type t
(** A live checker handle. *)

val name : t -> string

val checks : t -> int
(** Number of invariant evaluations performed so far — evidence the
    checker actually ran. *)

val detach : t -> unit
(** Unsubscribe the checker from its tracer.  Needed when sequential
    scenarios share one tracer: a checker left attached would observe
    the next scenario's events against a stale model. *)

val attach_zero_sum : ?context:int -> Trace.t -> initial:int -> t
(** [attach_zero_sum tr ~initial] starts the conservation checker with
    the system's initial e-penny total.  [context] bounds the events
    quoted in a violation (default 32). *)

val attach_antisymmetry : ?context:int -> Trace.t -> honest:bool array -> t
(** [honest.(i)] marks ISPs whose books must stay consistent —
    compliant, non-cheating kernels.  Out-of-range actors are treated
    as dishonest. *)

val attach_exactly_once : ?context:int -> Trace.t -> t

val attach_cycle_residue : ?context:int -> Trace.t -> honest:bool array -> t
(** Audit-attribution accounting (§4.4 collusion).  Consumes the bank's
    closing [bank/audit] span events and fails fast when the cycle
    detector's books stop adding up — ring volume exceeding the round's
    lied volume, rings without members, an ISP both cleared and
    ring-convicted — or when a {e ring} conviction lands on an ISP
    marked honest, the one outcome ring attribution must never produce
    (strict-majority offenders are exempt: in-flight traffic at a
    snapshot can transiently implicate honest ISPs, §4.4's pre-existing
    ambiguity).  [honest] as in {!attach_antisymmetry}. *)
