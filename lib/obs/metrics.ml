module Stats = Sim.Stats

type instrument =
  | Counter of Stats.Counter.t
  | Gauge of (unit -> float)
  | Summary of Stats.Summary.t
  | Histogram of Stats.Histogram.t
  | Series of Stats.Series.t

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Summary _ -> "summary"
  | Histogram _ -> "histogram"
  | Series _ -> "series"

let wrong_kind name have want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name have) want)

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some inst -> wrong_kind name inst "counter"
  | None ->
      let c = Stats.Counter.create name in
      Hashtbl.replace t.table name (Counter c);
      c

let adopt_counter t ?name c =
  let name = match name with Some n -> n | None -> Stats.Counter.name c in
  match Hashtbl.find_opt t.table name with
  | Some (Counter existing) when existing == c -> ()
  | Some inst -> wrong_kind name inst "counter (adopt)"
  | None -> Hashtbl.replace t.table name (Counter c)

let gauge t name f =
  (match Hashtbl.find_opt t.table name with
  | Some (Gauge _) | None -> ()
  | Some inst -> wrong_kind name inst "gauge");
  Hashtbl.replace t.table name (Gauge f)

let summary t name =
  match Hashtbl.find_opt t.table name with
  | Some (Summary s) -> s
  | Some inst -> wrong_kind name inst "summary"
  | None ->
      let s = Stats.Summary.create () in
      Hashtbl.replace t.table name (Summary s);
      s

let histogram t name ~lo ~hi ~bins =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some inst -> wrong_kind name inst "histogram"
  | None ->
      let h = Stats.Histogram.create ~lo ~hi ~bins in
      Hashtbl.replace t.table name (Histogram h);
      h

let series t name =
  match Hashtbl.find_opt t.table name with
  | Some (Series s) -> s
  | Some inst -> wrong_kind name inst "series"
  | None ->
      let s = Stats.Series.create name in
      Hashtbl.replace t.table name (Series s);
      s

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort compare

let to_table t =
  let tbl =
    Sim.Table.create ~title:"metrics" ~columns:[ "metric"; "kind"; "value"; "detail" ]
  in
  List.iter
    (fun name ->
      let inst = Hashtbl.find t.table name in
      let value, detail =
        match inst with
        | Counter c -> (Sim.Table.cell_int (Stats.Counter.value c), "")
        | Gauge f -> (Sim.Table.cell (f ()), "")
        | Summary s ->
            if Stats.Summary.count s = 0 then ("0", "empty")
            else
              ( Sim.Table.cell (Stats.Summary.mean s),
                Printf.sprintf "n=%d sd=%s min=%s max=%s"
                  (Stats.Summary.count s)
                  (Sim.Table.cell (Stats.Summary.stddev s))
                  (Sim.Table.cell (Stats.Summary.min s))
                  (Sim.Table.cell (Stats.Summary.max s)) )
        | Histogram h ->
            if Stats.Histogram.count h = 0 then ("0", "empty")
            else
              ( Sim.Table.cell_int (Stats.Histogram.count h),
                Printf.sprintf "p50=%s p99=%s p999=%s"
                  (Sim.Table.cell (Stats.Histogram.quantile h 0.5))
                  (Sim.Table.cell (Stats.Histogram.quantile h 0.99))
                  (Sim.Table.cell (Stats.Histogram.quantile h 0.999)) )
        | Series s -> (
            ( Sim.Table.cell_int (Stats.Series.length s),
              match Stats.Series.last s with
              | Some (time, v) ->
                  Printf.sprintf "last=%s @ %s" (Sim.Table.cell v)
                    (Sim.Table.cell time)
              | None -> "empty" ))
      in
      Sim.Table.add_row tbl [ name; kind_name inst; value; detail ])
    (names t);
  tbl

let print t = Sim.Table.print (to_table t)
