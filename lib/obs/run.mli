(** Per-run observability context handed from a front end (CLI, bench)
    to an experiment: an optional shared tracer (the front end exports
    its contents afterwards) and whether to print the metric registry. *)

type t = {
  tracer : Trace.t option;
      (** [None]: the experiment uses its own private tracer (checkers
          still run); [Some tr]: record into [tr] for export. *)
  metrics : bool;  (** append the metric-registry table to the output *)
}

val none : t

val tracer_or : t -> capacity:int -> Trace.t
(** The shared tracer, or a fresh private one with the given ring
    capacity. *)
