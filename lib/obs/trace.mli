(** Structured trace stream.

    A tracer collects typed events stamped with simulated time.  Events
    carry a component label (["isp"], ["bank"], ["credit"], ...), an
    actor (the ISP index, or [-1] for global/bank-side actions), a name,
    and a small list of typed fields.  Multi-step protocol actions
    (Buy→Buy_reply, an audit epoch) are bracketed by {e spans}: a
    [span_begin] returns an id that the matching [span_end] quotes, so
    exporters can reconstruct durations.

    Recording is a bounded ring buffer: the most recent [capacity]
    events are retained, older ones are evicted (and counted in
    {!dropped}).  Independent of recording, {e sinks} subscribed with
    {!subscribe} see every event as it is emitted — this is what the
    online invariant checkers build on.

    Emission consumes no randomness and, for a deterministic
    simulation, produces a byte-for-byte deterministic stream.  All hot
    call sites should guard with {!active} so an unused tracer costs a
    single load and branch. *)

type value = Int of int | Float of float | Bool of bool | Str of string
(** A typed field value. *)

type phase = Instant | Begin | End
(** Event phase: a point event, or one end of a span. *)

type event = {
  seq : int;  (** emission order, 0-based *)
  time : float;  (** simulated time, seconds *)
  comp : string;  (** component label *)
  actor : int;  (** ISP index, or [-1] for bank/world scope *)
  phase : phase;
  name : string;
  span : int;  (** span id for [Begin]/[End]; [0] for instants *)
  fields : (string * value) list;
}

type t
(** A tracer. *)

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] returns a tracer whose ring buffer retains
    the last [capacity] events (default [4096]).  [~capacity:0] records
    nothing; such a tracer stays inert until a sink subscribes. *)

val none : t
(** A shared, permanently-inert tracer: {!active} is [false], {!emit}
    is a no-op.  Used as the default before instrumented components are
    wired to a real tracer.  Subscribing to it raises
    [Invalid_argument]. *)

val active : t -> bool
(** [true] when events are recorded or observed, i.e. the capacity is
    positive or at least one sink is subscribed.  Instrumented code
    guards event construction with this so disabled tracing is free. *)

val set_clock : t -> (unit -> float) -> unit
(** Set the simulated-time source (typically [fun () -> Engine.now e]).
    Defaults to a constant [0.]. *)

val subscribe : t -> (event -> unit) -> unit
(** Add a sink called synchronously with every subsequent event.  A
    sink that raises aborts the emitting operation — invariant checkers
    rely on this to fail fast. *)

val unsubscribe : t -> (event -> unit) -> unit
(** Remove a sink added with {!subscribe} (compared physically;
    removing an unknown sink is a no-op).  Lets sequential scenarios
    share one tracer without stale checkers observing each other. *)

val emit :
  t -> ?actor:int -> ?fields:(string * value) list -> comp:string -> string -> unit
(** [emit t ~actor ~fields ~comp name] records an instant event.
    [actor] defaults to [-1], [fields] to [[]]. *)

val span_begin :
  t -> ?actor:int -> ?fields:(string * value) list -> comp:string -> string -> int
(** Like {!emit} with phase [Begin]; returns a fresh span id to pass to
    {!span_end}.  Returns [0] when the tracer is inactive. *)

val span_end :
  t ->
  ?actor:int ->
  ?fields:(string * value) list ->
  span:int ->
  comp:string ->
  string ->
  unit
(** Close the span opened by the {!span_begin} that returned [span]. *)

val events : t -> event list
(** Ring-buffer contents, oldest first. *)

val recent : t -> int -> event list
(** [recent t n] is the last [n] recorded events, oldest first. *)

val emitted : t -> int
(** Total events emitted while active (recorded or not). *)

val dropped : t -> int
(** Events evicted from the ring buffer. *)

val clear : t -> unit
(** Empty the ring buffer (sinks and counters are untouched). *)

val encode_state : Persist.Codec.W.t -> t -> unit
val restore_state : Persist.Codec.R.t -> t -> unit
(** Snapshot capture and in-place restore of the monotone emission
    counters (sequence and span ids).  Ring contents and capacity are a
    presentation choice and are not captured; restoring into
    {!none} raises [Persist.Codec.Corrupt]. *)

val pp_value : Format.formatter -> value -> unit

val pp_event : Format.formatter -> event -> unit
(** One-line human-readable rendering, e.g.
    ["[   864.000s] isp/2      charge user=17 dest=0"]. *)
