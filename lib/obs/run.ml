type t = { tracer : Trace.t option; metrics : bool }

let none = { tracer = None; metrics = false }

let tracer_or run ~capacity =
  match run.tracer with Some tr -> tr | None -> Trace.create ~capacity ()
