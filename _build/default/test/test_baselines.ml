(* Tests for the comparison baselines. *)

let rng () = Sim.Rng.create 99

(* ------------------------------------------------------------------ *)
(* Naive Bayes                                                         *)
(* ------------------------------------------------------------------ *)

let train_corpus ?(n = 1500) ?(misspell = 0.) () =
  Econ.Corpus.generate (rng ())
    { Econ.Corpus.default_params with Econ.Corpus.n; misspell_probability = misspell }

let test_bayes_untrained () =
  let f = Baselines.Bayes_filter.create () in
  Alcotest.(check (float 1e-9)) "prior 0.5" 0.5
    (Baselines.Bayes_filter.spam_probability f [ "viagra" ])

let test_bayes_learns () =
  let f = Baselines.Bayes_filter.create () in
  Baselines.Bayes_filter.train_all f (train_corpus ());
  Alcotest.(check bool) "spammy tokens score high" true
    (Baselines.Bayes_filter.spam_probability f [ "viagra"; "free"; "winner" ] > 0.9);
  Alcotest.(check bool) "hammy tokens score low" true
    (Baselines.Bayes_filter.spam_probability f [ "meeting"; "agenda"; "minutes" ] < 0.1);
  Alcotest.(check bool) "vocabulary grows" true
    (Baselines.Bayes_filter.vocabulary_size f > 50)

let test_bayes_accuracy_clean () =
  let f = Baselines.Bayes_filter.create () in
  Baselines.Bayes_filter.train_all f (train_corpus ());
  let eval =
    Baselines.Bayes_filter.evaluate f
      (Econ.Corpus.generate (Sim.Rng.create 123)
         { Econ.Corpus.default_params with Econ.Corpus.n = 1000 })
  in
  Alcotest.(check bool) "high recall on clean spam" true
    (Baselines.Bayes_filter.recall eval > 0.9)

let test_bayes_evaded_by_misspelling () =
  let f = Baselines.Bayes_filter.create () in
  Baselines.Bayes_filter.train_all f (train_corpus ());
  let clean_eval =
    Baselines.Bayes_filter.evaluate f
      (Econ.Corpus.generate (Sim.Rng.create 5)
         { Econ.Corpus.default_params with Econ.Corpus.n = 1000 })
  in
  let evaded_eval =
    Baselines.Bayes_filter.evaluate f
      (Econ.Corpus.generate (Sim.Rng.create 5)
         { Econ.Corpus.default_params with
           Econ.Corpus.n = 1000;
           misspell_probability = 1.;
         })
  in
  Alcotest.(check bool) "misspelling cuts recall" true
    (Baselines.Bayes_filter.recall evaded_eval
    < Baselines.Bayes_filter.recall clean_eval -. 0.2)

let test_bayes_evaluation_counts () =
  let f = Baselines.Bayes_filter.create () in
  Baselines.Bayes_filter.train_all f (train_corpus ());
  let docs =
    Econ.Corpus.generate (Sim.Rng.create 9)
      { Econ.Corpus.default_params with Econ.Corpus.n = 500 }
  in
  let e = Baselines.Bayes_filter.evaluate f docs in
  Alcotest.(check int) "counts partition the corpus" 500
    (e.Baselines.Bayes_filter.true_positives + e.Baselines.Bayes_filter.false_positives
    + e.Baselines.Bayes_filter.true_negatives
    + e.Baselines.Bayes_filter.false_negatives)

(* ------------------------------------------------------------------ *)
(* Blacklist / whitelist                                               *)
(* ------------------------------------------------------------------ *)

let test_blacklist () =
  let b = Baselines.Blacklist.create () in
  Baselines.Blacklist.ban_domain b "SpamHaus.biz";
  Alcotest.(check bool) "banned domain rejected" true
    (Baselines.Blacklist.check b ~sender:"evil@spamhaus.BIZ"
    = Baselines.Blacklist.Reject_blacklisted);
  Alcotest.(check bool) "unknown accepted" true
    (Baselines.Blacklist.check b ~sender:"friend@ok.com"
    = Baselines.Blacklist.Accept_unknown);
  Baselines.Blacklist.unban_domain b "spamhaus.biz";
  Alcotest.(check bool) "unbanned" true
    (Baselines.Blacklist.check b ~sender:"evil@spamhaus.biz"
    = Baselines.Blacklist.Accept_unknown)

let test_whitelist_beats_blacklist () =
  let b = Baselines.Blacklist.create () in
  Baselines.Blacklist.ban_domain b "corp.com";
  Baselines.Blacklist.trust_sender b "boss@corp.com";
  Alcotest.(check bool) "whitelist wins" true
    (Baselines.Blacklist.check b ~sender:"boss@corp.com"
    = Baselines.Blacklist.Accept_whitelisted);
  (* The forged-sender evasion: a spammer claiming the trusted address
     is accepted — exactly the paper's point about whitelists. *)
  Alcotest.(check bool) "forgery passes too" true
    (Baselines.Blacklist.check b ~sender:"boss@corp.com"
    = Baselines.Blacklist.Accept_whitelisted);
  Alcotest.(check int) "counters" 1 (Baselines.Blacklist.banned_count b);
  Alcotest.(check int) "trusted" 1 (Baselines.Blacklist.trusted_count b)

(* ------------------------------------------------------------------ *)
(* Hashcash                                                            *)
(* ------------------------------------------------------------------ *)

let test_hashcash_mint_verify () =
  let stamp, work = Baselines.Hashcash.mint (rng ()) ~recipient:"bob@b.com" ~difficulty:8 in
  Alcotest.(check bool) "verifies" true (Baselines.Hashcash.verify stamp);
  Alcotest.(check bool) "did some work" true (work >= 1)

let test_hashcash_work_scales () =
  let r = rng () in
  let avg difficulty =
    let total = ref 0 in
    for _ = 1 to 30 do
      let _, w = Baselines.Hashcash.mint r ~recipient:"x@y.com" ~difficulty in
      total := !total + w
    done;
    float_of_int !total /. 30.
  in
  let w4 = avg 4 and w8 = avg 8 in
  (* Expected 16 vs 256 attempts; allow generous noise. *)
  Alcotest.(check bool) "difficulty 8 much harder than 4" true (w8 /. w4 > 4.);
  Alcotest.(check (float 1e-9)) "expected work formula" 256.
    (Baselines.Hashcash.expected_work ~difficulty:8)

let test_hashcash_difficulty_bounds () =
  Alcotest.(check bool) "difficulty 31 rejected" true
    (try
       ignore (Baselines.Hashcash.mint (rng ()) ~recipient:"x" ~difficulty:31);
       false
     with Invalid_argument _ -> true)

let test_hashcash_stamp_bound_to_recipient () =
  let r = rng () in
  let stamp, _ = Baselines.Hashcash.mint r ~recipient:"bob@b.com" ~difficulty:10 in
  (* A stamp for bob is (overwhelmingly) not valid for carol: minting
     for carol requires fresh work.  We verify indirectly: the stamp
     validates and records its recipient. *)
  Alcotest.(check string) "recipient recorded" "bob@b.com"
    stamp.Baselines.Hashcash.recipient;
  Alcotest.(check bool) "cpu cost model" true
    (Baselines.Hashcash.cpu_seconds ~hashes:10_000_000 = 1.0)

(* ------------------------------------------------------------------ *)
(* Challenge-response                                                  *)
(* ------------------------------------------------------------------ *)

let test_challenge_first_contact () =
  let c = Baselines.Challenge.create Baselines.Challenge.default_params in
  let r = rng () in
  let fate1 =
    Baselines.Challenge.process c r ~sender:"alice@a.com" ~is_spam:false
      ~is_automated:false
  in
  Alcotest.(check bool) "first contact challenged" true
    (fate1 = Baselines.Challenge.Challenged_then_delivered);
  let fate2 =
    Baselines.Challenge.process c r ~sender:"alice@a.com" ~is_spam:false
      ~is_automated:false
  in
  Alcotest.(check bool) "second contact direct" true
    (fate2 = Baselines.Challenge.Delivered);
  let t = Baselines.Challenge.totals c in
  Alcotest.(check int) "one challenge" 1 t.Baselines.Challenge.challenges_sent;
  Alcotest.(check (float 1e-9)) "12 human seconds" 12. t.Baselines.Challenge.human_seconds

let test_challenge_drops_spam_and_newsletters () =
  let c = Baselines.Challenge.create Baselines.Challenge.default_params in
  let r = rng () in
  Alcotest.(check bool) "spam dropped" true
    (Baselines.Challenge.process c r ~sender:"spam@bot.net" ~is_spam:true
       ~is_automated:true
    = Baselines.Challenge.Dropped_spam);
  Alcotest.(check bool) "newsletter lost" true
    (Baselines.Challenge.process c r ~sender:"news@paper.com" ~is_spam:false
       ~is_automated:true
    = Baselines.Challenge.Held_forever);
  let t = Baselines.Challenge.totals c in
  Alcotest.(check int) "legit lost counted" 1 t.Baselines.Challenge.legit_lost;
  Alcotest.(check int) "spam dropped counted" 1 t.Baselines.Challenge.spam_dropped

let test_challenge_spammer_answering_bypass () =
  let params = { Baselines.Challenge.default_params with Baselines.Challenge.spammer_answers = true } in
  let c = Baselines.Challenge.create params in
  let r = rng () in
  ignore
    (Baselines.Challenge.process c r ~sender:"spam@bot.net" ~is_spam:true
       ~is_automated:true);
  ignore
    (Baselines.Challenge.process c r ~sender:"spam@bot.net" ~is_spam:true
       ~is_automated:true);
  let t = Baselines.Challenge.totals c in
  Alcotest.(check int) "spam gets through" 2 t.Baselines.Challenge.spam_delivered

(* ------------------------------------------------------------------ *)
(* SHRED                                                               *)
(* ------------------------------------------------------------------ *)

let test_shred_accounting () =
  let s = Baselines.Shred.create Baselines.Shred.default_params in
  let r = rng () in
  for _ = 1 to 10_000 do
    Baselines.Shred.on_spam_received s r
  done;
  let t = Baselines.Shred.totals s in
  Alcotest.(check int) "all spam seen" 10_000 t.Baselines.Shred.spam_seen;
  (* trigger probability 0.3 *)
  Alcotest.(check bool) "triggers ~30%" true
    (abs (t.Baselines.Shred.triggers - 3000) < 300);
  Alcotest.(check (float 1e-9)) "receiver earns nothing" 0.
    t.Baselines.Shred.receiver_earned_cents;
  (* Processing at 2c/payment exceeds the 1c collected. *)
  Alcotest.(check bool) "processing exceeds collection" true
    (t.Baselines.Shred.isp_processing_cost_cents > t.Baselines.Shred.spammer_paid_cents);
  Alcotest.(check bool) "human effort spent" true (t.Baselines.Shred.human_seconds > 0.)

let test_shred_collusion () =
  let params = { Baselines.Shred.default_params with Baselines.Shred.colluding_isps = 1. } in
  let s = Baselines.Shred.create params in
  let r = rng () in
  for _ = 1 to 1000 do
    Baselines.Shred.on_spam_received s r
  done;
  let t = Baselines.Shred.totals s in
  Alcotest.(check (float 1e-9)) "collusion zeroes spammer cost" 0.
    t.Baselines.Shred.spammer_paid_cents;
  Alcotest.(check bool) "but triggers still happened" true
    (t.Baselines.Shred.triggers > 0)

let test_shred_legit_untouched () =
  let s = Baselines.Shred.create Baselines.Shred.default_params in
  Baselines.Shred.on_legit_received s;
  let t = Baselines.Shred.totals s in
  Alcotest.(check int) "legit counted" 1 t.Baselines.Shred.legit_seen;
  Alcotest.(check int) "no ops for legit" 0 t.Baselines.Shred.accounting_ops

let () =
  Alcotest.run "baselines"
    [
      ( "bayes",
        [
          Alcotest.test_case "untrained prior" `Quick test_bayes_untrained;
          Alcotest.test_case "learns" `Quick test_bayes_learns;
          Alcotest.test_case "clean accuracy" `Quick test_bayes_accuracy_clean;
          Alcotest.test_case "misspelling evasion" `Quick test_bayes_evaded_by_misspelling;
          Alcotest.test_case "evaluation counts" `Quick test_bayes_evaluation_counts;
        ] );
      ( "blacklist",
        [
          Alcotest.test_case "ban/unban" `Quick test_blacklist;
          Alcotest.test_case "whitelist precedence" `Quick test_whitelist_beats_blacklist;
        ] );
      ( "hashcash",
        [
          Alcotest.test_case "mint/verify" `Quick test_hashcash_mint_verify;
          Alcotest.test_case "work scales" `Quick test_hashcash_work_scales;
          Alcotest.test_case "difficulty bounds" `Quick test_hashcash_difficulty_bounds;
          Alcotest.test_case "stamp binding" `Quick test_hashcash_stamp_bound_to_recipient;
        ] );
      ( "challenge",
        [
          Alcotest.test_case "first contact" `Quick test_challenge_first_contact;
          Alcotest.test_case "spam and newsletters" `Quick
            test_challenge_drops_spam_and_newsletters;
          Alcotest.test_case "answering spammer bypass" `Quick
            test_challenge_spammer_answering_bypass;
        ] );
      ( "shred",
        [
          Alcotest.test_case "accounting" `Quick test_shred_accounting;
          Alcotest.test_case "collusion" `Quick test_shred_collusion;
          Alcotest.test_case "legit untouched" `Quick test_shred_legit_untouched;
        ] );
    ]
