(* Tests for the Abstract Protocol notation runtime and explorer. *)

(* ------------------------------------------------------------------ *)
(* A bounded ping-pong protocol: process 0 sends [rounds] pings; each
   ping is answered by a pong.  Used for basic runtime semantics. *)
(* ------------------------------------------------------------------ *)

type ping_state = { to_send : int; got : int }
type ping_msg = Ping | Pong

let ping_pong ~rounds : (ping_state, ping_msg) Apn.Spec.protocol =
  let sender =
    {
      Apn.Spec.pid = 0;
      init = { to_send = rounds; got = 0 };
      actions =
        [
          Apn.Spec.local ~name:"send-ping"
            ~enabled:(fun s -> s.to_send > 0)
            ~apply:(fun s -> ({ s with to_send = s.to_send - 1 }, [ (1, Ping) ]));
          Apn.Spec.receive ~name:"recv-pong"
            ~accepts:(fun ~src:_ m -> m = Pong)
            ~apply:(fun s ~src:_ _ -> ({ s with got = s.got + 1 }, []));
        ];
    }
  in
  let responder =
    {
      Apn.Spec.pid = 1;
      init = { to_send = 0; got = 0 };
      actions =
        [
          Apn.Spec.receive ~name:"recv-ping"
            ~accepts:(fun ~src:_ m -> m = Ping)
            ~apply:(fun s ~src -> fun _ -> ({ s with got = s.got + 1 }, [ (src, Pong) ]));
        ];
    }
  in
  [| sender; responder |]

let test_ping_pong_quiescence () =
  let rt = Apn.Runtime.create ~seed:1 (ping_pong ~rounds:5) in
  let steps, quiescent = Apn.Runtime.run rt in
  Alcotest.(check bool) "reaches quiescence" true quiescent;
  (* 5 sends + 5 ping receipts + 5 pong receipts *)
  Alcotest.(check int) "step count" 15 steps;
  Alcotest.(check int) "all pongs received" 5 (Apn.Runtime.state rt 0).got;
  Alcotest.(check int) "all pings received" 5 (Apn.Runtime.state rt 1).got;
  Alcotest.(check (list unit)) "channels drained" []
    (List.map ignore (Apn.Runtime.channel rt ~src:0 ~dst:1))

let test_ping_pong_deterministic_seed () =
  let run seed =
    let rt = Apn.Runtime.create ~seed ~record_trace:true (ping_pong ~rounds:3) in
    ignore (Apn.Runtime.run rt);
    Apn.Runtime.trace rt
  in
  Alcotest.(check bool) "same seed, same trace" true (run 7 = run 7);
  (* Different seeds overwhelmingly produce different interleavings for
     9-step runs; if they collide the test is still meaningful via seed
     pair choice below. *)
  Alcotest.(check bool) "traces recorded" true (List.length (run 7) = 9)

let test_runtime_max_steps () =
  (* An always-enabled action never quiesces. *)
  let spinner =
    [|
      {
        Apn.Spec.pid = 0;
        init = { to_send = 0; got = 0 };
        actions =
          [
            Apn.Spec.local ~name:"spin"
              ~enabled:(fun _ -> true)
              ~apply:(fun s -> (s, []));
          ];
      };
    |]
  in
  let rt = Apn.Runtime.create spinner in
  let steps, quiescent = Apn.Runtime.run ~max_steps:50 rt in
  Alcotest.(check int) "bounded" 50 steps;
  Alcotest.(check bool) "not quiescent" false quiescent

let test_runtime_inject () =
  let rt = Apn.Runtime.create ~seed:3 (ping_pong ~rounds:0) in
  Alcotest.(check int) "initially quiescent" 0 (Apn.Runtime.enabled_count rt);
  (* Forge a ping from outside: the responder answers it. *)
  Apn.Runtime.inject rt ~src:0 ~dst:1 Ping;
  let _, quiescent = Apn.Runtime.run rt in
  Alcotest.(check bool) "quiescent after forgery handled" true quiescent;
  Alcotest.(check int) "responder processed forgery" 1 (Apn.Runtime.state rt 1).got;
  Alcotest.(check int) "sender got unsolicited pong" 1 (Apn.Runtime.state rt 0).got

let test_runtime_duplicating_tamper () =
  (* Duplicate every ping in flight: the responder sees twice as many. *)
  let tamper ~src:_ ~dst:_ m = match m with Ping -> [ Ping; Ping ] | Pong -> [ Pong ] in
  let rt = Apn.Runtime.create ~seed:5 ~tamper (ping_pong ~rounds:4) in
  let _, quiescent = Apn.Runtime.run rt in
  Alcotest.(check bool) "quiescent" true quiescent;
  Alcotest.(check int) "pings doubled" 8 (Apn.Runtime.state rt 1).got;
  Alcotest.(check int) "pongs not doubled" 8 (Apn.Runtime.state rt 0).got

let test_runtime_dropping_tamper () =
  let tamper ~src:_ ~dst:_ m = match m with Ping -> [] | Pong -> [ Pong ] in
  let rt = Apn.Runtime.create ~seed:5 ~tamper (ping_pong ~rounds:4) in
  let _, quiescent = Apn.Runtime.run rt in
  Alcotest.(check bool) "quiescent" true quiescent;
  Alcotest.(check int) "no pings arrive" 0 (Apn.Runtime.state rt 1).got

(* ------------------------------------------------------------------ *)
(* Timeout guard: fires only when the process's outgoing channels are
   empty (the operational meaning of the paper's snapshot timeout).    *)
(* ------------------------------------------------------------------ *)

type timeout_state = { sent : bool; fired : bool; sunk : int }
type unit_msg = Tick

let timeout_protocol : (timeout_state, unit_msg) Apn.Spec.protocol =
  [|
    {
      Apn.Spec.pid = 0;
      init = { sent = false; fired = false; sunk = 0 };
      actions =
        [
          Apn.Spec.local ~name:"send"
            ~enabled:(fun s -> not s.sent)
            ~apply:(fun s -> ({ s with sent = true }, [ (1, Tick) ]));
          Apn.Spec.timeout ~name:"timeout"
            ~enabled:(fun view s -> s.sent && (not s.fired) && view.Apn.Spec.outgoing_empty 0)
            ~apply:(fun s -> ({ s with fired = true }, []));
        ];
    };
    {
      Apn.Spec.pid = 1;
      init = { sent = false; fired = false; sunk = 0 };
      actions =
        [
          Apn.Spec.receive ~name:"sink"
            ~accepts:(fun ~src:_ _ -> true)
            ~apply:(fun s ~src:_ _ -> ({ s with sunk = s.sunk + 1 }, []));
        ];
    };
  |]

let test_timeout_waits_for_empty_channel () =
  (* In every interleaving, "timeout" cannot fire before "sink" consumed
     the tick; verify via exhaustive exploration. *)
  let invariant (g : (timeout_state, unit_msg) Apn.Explore.global) =
    if g.states.(0).fired && g.states.(1).sunk = 0 then
      Error "timeout fired while message still in flight"
    else Ok ()
  in
  match Apn.Explore.run ~invariant timeout_protocol with
  | Apn.Explore.Exhausted { visited } ->
      Alcotest.(check bool) "some states" true (visited >= 4)
  | Apn.Explore.Bounded _ -> Alcotest.fail "space should be tiny"
  | Apn.Explore.Violation { detail; _ } -> Alcotest.fail detail

(* ------------------------------------------------------------------ *)
(* Token ring: mutual exclusion invariant checked exhaustively.        *)
(* ------------------------------------------------------------------ *)

type ring_state = { holding : bool; passes_left : int }
type token_msg = Token

let token_ring ~n ~passes : (ring_state, token_msg) Apn.Spec.protocol =
  let make pid =
    {
      Apn.Spec.pid;
      init = { holding = pid = 0; passes_left = passes };
      actions =
        [
          Apn.Spec.local ~name:"pass"
            ~enabled:(fun s -> s.holding && s.passes_left > 0)
            ~apply:(fun s ->
              ( { holding = false; passes_left = s.passes_left - 1 },
                [ ((pid + 1) mod n, Token) ] ));
          Apn.Spec.receive ~name:"take"
            ~accepts:(fun ~src:_ _ -> true)
            ~apply:(fun s ~src:_ _ -> ({ s with holding = true }, []));
        ];
    }
  in
  Array.init n make

let count_tokens (g : (ring_state, token_msg) Apn.Explore.global) =
  let in_states =
    Array.fold_left (fun acc s -> if s.holding then acc + 1 else acc) 0 g.states
  in
  let in_flight =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc c -> acc + List.length c) acc row)
      0 g.chans
  in
  in_states + in_flight

let test_token_ring_exclusion () =
  let spec = token_ring ~n:3 ~passes:2 in
  let invariant g =
    let tokens = count_tokens g in
    if tokens = 1 then Ok ()
    else Error (Printf.sprintf "%d tokens in system" tokens)
  in
  match Apn.Explore.run ~invariant spec with
  | Apn.Explore.Exhausted { visited } ->
      Alcotest.(check bool) "explored several states" true (visited > 5)
  | Apn.Explore.Bounded _ -> Alcotest.fail "unexpected truncation"
  | Apn.Explore.Violation { detail; _ } -> Alcotest.fail detail

let test_explorer_finds_violation () =
  (* Claim something false: that process 2 never holds the token. *)
  let spec = token_ring ~n:3 ~passes:3 in
  let invariant (g : (ring_state, token_msg) Apn.Explore.global) =
    if g.states.(2).holding then Error "process 2 holds token" else Ok ()
  in
  match Apn.Explore.run ~invariant spec with
  | Apn.Explore.Violation { trace; detail; _ } ->
      Alcotest.(check string) "explanation" "process 2 holds token" detail;
      (* Token must travel 0 -> 1 -> 2: at least 4 actions. *)
      Alcotest.(check bool) "trace length sensible" true (List.length trace >= 4)
  | Apn.Explore.Exhausted _ | Apn.Explore.Bounded _ ->
      Alcotest.fail "expected a violation"

let test_explorer_bounded () =
  let spec = token_ring ~n:3 ~passes:50 in
  let invariant _ = Ok () in
  match Apn.Explore.run ~max_states:20 ~invariant spec with
  | Apn.Explore.Bounded { visited } ->
      Alcotest.(check bool) "visited within bound" true (visited <= 21)
  | Apn.Explore.Exhausted _ -> Alcotest.fail "should have been truncated"
  | Apn.Explore.Violation _ -> Alcotest.fail "no violation expected"

let test_explorer_max_depth () =
  let spec = token_ring ~n:3 ~passes:50 in
  let invariant _ = Ok () in
  match Apn.Explore.run ~max_depth:3 ~invariant spec with
  | Apn.Explore.Bounded { visited } ->
      Alcotest.(check bool) "shallow walk" true (visited < 50)
  | Apn.Explore.Exhausted _ -> Alcotest.fail "depth bound should truncate"
  | Apn.Explore.Violation _ -> Alcotest.fail "no violation expected"

let test_explorer_initial_state_checked () =
  let spec = token_ring ~n:2 ~passes:1 in
  let invariant _ = Error "always fails" in
  match Apn.Explore.run ~invariant spec with
  | Apn.Explore.Violation { trace; _ } ->
      Alcotest.(check (list string)) "empty trace for initial violation" [] trace
  | Apn.Explore.Exhausted _ | Apn.Explore.Bounded _ ->
      Alcotest.fail "initial state must be checked"

(* ------------------------------------------------------------------ *)
(* Spec validation                                                     *)
(* ------------------------------------------------------------------ *)

let test_validate_pid_mismatch () =
  let bad =
    [|
      {
        Apn.Spec.pid = 1;
        init = ();
        actions = ([] : (unit, unit) Apn.Spec.action list);
      };
    |]
  in
  Alcotest.(check bool) "raises" true
    (try
       Apn.Spec.validate bad;
       false
     with Invalid_argument _ -> true)

let test_validate_empty () =
  Alcotest.(check bool) "raises" true
    (try
       Apn.Spec.validate ([||] : (unit, unit) Apn.Spec.protocol);
       false
     with Invalid_argument _ -> true)

(* Randomized: runtime always reaches the same quiescent state on the
   ping-pong protocol regardless of interleaving (confluence). *)
let test_ping_pong_confluent =
  QCheck.Test.make ~name:"ping-pong quiescent state independent of schedule"
    ~count:50
    QCheck.(pair small_nat (int_bound 10_000))
    (fun (rounds, seed) ->
      let rounds = min rounds 8 in
      let rt = Apn.Runtime.create ~seed (ping_pong ~rounds) in
      let _, quiescent = Apn.Runtime.run rt in
      quiescent
      && (Apn.Runtime.state rt 0).got = rounds
      && (Apn.Runtime.state rt 1).got = rounds)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "apn"
    [
      ( "runtime",
        Alcotest.test_case "ping-pong quiescence" `Quick test_ping_pong_quiescence
        :: Alcotest.test_case "deterministic per seed" `Quick
             test_ping_pong_deterministic_seed
        :: Alcotest.test_case "max steps" `Quick test_runtime_max_steps
        :: Alcotest.test_case "inject forgery" `Quick test_runtime_inject
        :: Alcotest.test_case "duplicating tamper" `Quick test_runtime_duplicating_tamper
        :: Alcotest.test_case "dropping tamper" `Quick test_runtime_dropping_tamper
        :: qcheck [ test_ping_pong_confluent ] );
      ( "timeout",
        [
          Alcotest.test_case "waits for empty channel" `Quick
            test_timeout_waits_for_empty_channel;
        ] );
      ( "explore",
        [
          Alcotest.test_case "token ring exclusion" `Quick test_token_ring_exclusion;
          Alcotest.test_case "finds violation" `Quick test_explorer_finds_violation;
          Alcotest.test_case "bounded by states" `Quick test_explorer_bounded;
          Alcotest.test_case "bounded by depth" `Quick test_explorer_max_depth;
          Alcotest.test_case "initial state checked" `Quick
            test_explorer_initial_state_checked;
        ] );
      ( "spec",
        [
          Alcotest.test_case "pid mismatch" `Quick test_validate_pid_mismatch;
          Alcotest.test_case "empty protocol" `Quick test_validate_empty;
        ] );
    ]
