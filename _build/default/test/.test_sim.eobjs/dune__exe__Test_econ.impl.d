test/test_econ.ml: Alcotest Array Econ Float Hashtbl List Option Sim
