test/test_zmail.mli:
