test/test_smtp.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Sim Smtp String
