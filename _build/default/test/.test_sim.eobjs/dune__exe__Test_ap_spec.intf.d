test/test_ap_spec.mli:
