test/test_zmail.ml: Alcotest Array Gen List QCheck QCheck_alcotest Result Sim Smtp Toycrypto Zmail
