test/test_sim.ml: Alcotest Array Float Format List QCheck QCheck_alcotest Sim String Summary
