test/test_econ.mli:
