test/test_world.ml: Alcotest Array Baselines Econ List Sim Smtp Zmail
