test/test_toycrypto.mli:
