test/test_federation.ml: Alcotest Array List Printf Sim Toycrypto Zmail
