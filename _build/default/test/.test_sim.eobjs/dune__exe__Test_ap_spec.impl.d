test/test_ap_spec.ml: Alcotest Apn Array List String Zmail
