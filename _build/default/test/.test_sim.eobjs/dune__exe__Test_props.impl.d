test/test_props.ml: Alcotest Apn Array Bytes Char Gen List Printf QCheck QCheck_alcotest Sim Smtp String Toycrypto Zmail
