test/test_harness.ml: Alcotest Harness List Sim String
