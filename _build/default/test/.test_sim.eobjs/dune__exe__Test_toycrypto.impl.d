test/test_toycrypto.ml: Alcotest Bytes Char Hashtbl Int64 List Printf QCheck QCheck_alcotest Sim String Toycrypto
