test/test_apn.ml: Alcotest Apn Array List Printf QCheck QCheck_alcotest
