test/test_baselines.ml: Alcotest Baselines Econ Sim
