(* Tests for the economic / workload models. *)

let rng () = Sim.Rng.create 7

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign ?(response_rate = 3e-4) ?(value = 20.) ?(infra = 1e-4) () =
  Econ.Campaign.v ~id:0 ~list_size:10_000 ~blasts_per_month:4
    ~response_rate ~value_per_response:value ~infra_cost_per_message:infra

let test_campaign_profit () =
  let c = campaign () in
  (* 3e-4 * 20 = 6e-3 revenue per message. *)
  Alcotest.(check (float 1e-9)) "free email profit" (6e-3 -. 1e-4)
    (Econ.Campaign.profit_per_message c ~price:0.);
  Alcotest.(check bool) "viable at zero price" true (Econ.Campaign.viable c ~price:0.);
  Alcotest.(check bool) "dead at one e-penny" false
    (Econ.Campaign.viable c ~price:0.01);
  Alcotest.(check int) "monthly volume" 40_000 (Econ.Campaign.monthly_volume c)

let test_campaign_break_even () =
  (* At $0.01/message and $20/response the spammer needs r = 0.01005/20
     ~ 5e-4 ... with infra included. *)
  let r =
    Econ.Campaign.break_even_response_rate ~value_per_response:20. ~infra:1e-4
      ~price:0.01
  in
  Alcotest.(check (float 1e-9)) "break-even" (0.0101 /. 20.) r;
  (* The paper's two-orders-of-magnitude claim: break-even rises by
     ~100x when price goes from 0 to one e-penny. *)
  let r0 =
    Econ.Campaign.break_even_response_rate ~value_per_response:20. ~infra:1e-4
      ~price:0.
  in
  Alcotest.(check bool) "~100x increase" true (r /. r0 > 90. && r /. r0 < 150.)

let test_campaign_validation () =
  Alcotest.(check bool) "bad response rate" true
    (try
       ignore (campaign ~response_rate:1.5 ());
       false
     with Invalid_argument _ -> true)

let test_population () =
  let pop = Econ.Campaign.population (rng ()) Econ.Campaign.default_population in
  Alcotest.(check int) "size" 200 (List.length pop);
  List.iter
    (fun c ->
      Alcotest.(check bool) "rate in range" true
        (c.Econ.Campaign.response_rate >= 0. && c.Econ.Campaign.response_rate <= 1.);
      Alcotest.(check bool) "positive list" true (c.Econ.Campaign.list_size >= 1))
    pop

(* ------------------------------------------------------------------ *)
(* Market                                                               *)
(* ------------------------------------------------------------------ *)

let test_market_median () =
  Alcotest.(check (float 1e-9)) "odd" 2. (Econ.Market.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Econ.Market.median [ 4.; 1.; 2.; 3. ])

let test_market_monotone () =
  let pop = Econ.Campaign.population (rng ()) Econ.Campaign.default_population in
  let points =
    Econ.Market.sweep pop ~prices:[ 0.; 0.001; 0.01; 0.05 ]
  in
  let volumes = List.map (fun p -> p.Econ.Market.monthly_volume) points in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "volume falls with price" true (non_increasing volumes);
  let at_zero = List.hd points and at_penny = List.nth points 2 in
  Alcotest.(check (float 1e-9)) "baseline fraction" 1. at_zero.Econ.Market.volume_fraction;
  Alcotest.(check bool) "e-penny kills most spam" true
    (at_penny.Econ.Market.volume_fraction < 0.2);
  Alcotest.(check bool) "cost multiplier ~ 100x" true
    (at_penny.Econ.Market.spammer_cost_multiplier > 90.)

let test_market_all_fields () =
  let pop = [ campaign () ] in
  let p = Econ.Market.evaluate pop ~price:0. in
  Alcotest.(check int) "viable" 1 p.Econ.Market.viable_campaigns;
  Alcotest.(check int) "total" 1 p.Econ.Market.total_campaigns;
  Alcotest.(check int) "volume" 40_000 p.Econ.Market.monthly_volume

(* ------------------------------------------------------------------ *)
(* User model                                                          *)
(* ------------------------------------------------------------------ *)

let test_user_mix_assignment () =
  let profiles = Econ.User_model.assign (rng ()) Econ.User_model.standard_mix 1000 in
  Alcotest.(check int) "all assigned" 1000 (Array.length profiles);
  let count name =
    Array.fold_left
      (fun acc p -> if p.Econ.User_model.name = name then acc + 1 else acc)
      0 profiles
  in
  Alcotest.(check bool) "light ~40%" true (abs (count "light" - 400) < 80);
  Alcotest.(check bool) "broadcaster ~5%" true (abs (count "broadcaster" - 50) < 40)

let test_user_send_delay () =
  let r = rng () in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to 5_000 do
    Sim.Stats.Summary.add s
      (Econ.User_model.inter_send_delay r Econ.User_model.average)
  done;
  (* 8 sends/day -> mean gap of 10800 s. *)
  let mean = Sim.Stats.Summary.mean s in
  Alcotest.(check bool) "mean near 10800" true (abs_float (mean -. 10800.) < 500.)

let test_user_correspondent () =
  let r = rng () in
  for _ = 1 to 500 do
    let c =
      Econ.User_model.pick_correspondent r ~self:5 ~universe:50
        Econ.User_model.average
    in
    Alcotest.(check bool) "in range, not self" true (c >= 0 && c < 50 && c <> 5)
  done

let test_user_correspondent_concentrated () =
  (* Zipf weighting: the most common correspondent gets far more than
     1/contacts of the traffic. *)
  let r = rng () in
  let counts = Hashtbl.create 64 in
  let n = 2_000 in
  for _ = 1 to n do
    let c =
      Econ.User_model.pick_correspondent r ~self:0 ~universe:1000
        Econ.User_model.average
    in
    Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
  done;
  let top = Hashtbl.fold (fun _ v acc -> max v acc) counts 0 in
  Alcotest.(check bool) "top contact concentrated" true
    (float_of_int top /. float_of_int n > 2. /. 40.)

(* ------------------------------------------------------------------ *)
(* Adoption                                                            *)
(* ------------------------------------------------------------------ *)

let test_adoption_bootstrap () =
  let p = Econ.Adoption.default_params in
  let series = Econ.Adoption.simulate (rng ()) p in
  Alcotest.(check int) "one point per day plus day 0" (p.Econ.Adoption.days + 1)
    (List.length series);
  let first = List.hd series in
  Alcotest.(check int) "starts with 2 compliant" 2 first.Econ.Adoption.compliant_isps;
  let last = List.nth series p.Econ.Adoption.days in
  Alcotest.(check bool) "positive feedback spreads adoption" true
    (last.Econ.Adoption.compliant_isps > p.Econ.Adoption.n_isps / 2)

let test_adoption_monotone () =
  let series = Econ.Adoption.simulate (rng ()) Econ.Adoption.default_params in
  let rec check_nondecreasing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "compliance never regresses" true
          (b.Econ.Adoption.compliant_isps >= a.Econ.Adoption.compliant_isps);
        check_nondecreasing rest
    | [ _ ] | [] -> ()
  in
  check_nondecreasing series

let test_adoption_majority () =
  let p = Econ.Adoption.default_params in
  let series = Econ.Adoption.simulate (rng ()) p in
  match Econ.Adoption.days_to_majority ~total_isps:p.Econ.Adoption.n_isps series with
  | Some day -> Alcotest.(check bool) "majority reached eventually" true (day > 0)
  | None -> Alcotest.fail "expected majority adoption"

let test_adoption_no_seed_no_growth () =
  (* With suppression = 0 there is no benefit, so pressure comes only
     from peer share; a tiny seed with high thresholds should stall. *)
  let p =
    { Econ.Adoption.default_params with
      Econ.Adoption.compliant_spam_suppression = 0.;
      threshold_mean = 0.9;
      threshold_sigma = 0.01;
      days = 50;
    }
  in
  let series = Econ.Adoption.simulate (rng ()) p in
  let last = List.nth series p.Econ.Adoption.days in
  Alcotest.(check int) "no spread without benefit" 2 last.Econ.Adoption.compliant_isps

(* ------------------------------------------------------------------ *)
(* Zombie                                                              *)
(* ------------------------------------------------------------------ *)

let test_zombie_limit_bounds_liability () =
  let p = { Econ.Zombie.default_params with Econ.Zombie.daily_limit = 50 } in
  let o = Econ.Zombie.simulate (rng ()) p in
  Alcotest.(check bool) "liability bounded by limit" true
    (o.Econ.Zombie.max_user_liability_epennies <= 50);
  Alcotest.(check bool) "zombies detected" true
    (not (Float.is_nan o.Econ.Zombie.mean_detection_day))

let test_zombie_no_limit_no_detection () =
  let p = { Econ.Zombie.default_params with Econ.Zombie.daily_limit = max_int } in
  let o = Econ.Zombie.simulate (rng ()) p in
  Alcotest.(check bool) "no warnings without a limit" true
    (Float.is_nan o.Econ.Zombie.mean_detection_day);
  Alcotest.(check bool) "much more virus mail" true
    (o.Econ.Zombie.total_virus_delivered
    > 10 * (let p' = { p with Econ.Zombie.daily_limit = 50 } in
            (Econ.Zombie.simulate (rng ()) p').Econ.Zombie.total_virus_delivered))

let test_zombie_tight_limit_contains_outbreak () =
  let loose = { Econ.Zombie.default_params with Econ.Zombie.daily_limit = 1000 } in
  let tight = { Econ.Zombie.default_params with Econ.Zombie.daily_limit = 20 } in
  let o_loose = Econ.Zombie.simulate (rng ()) loose in
  let o_tight = Econ.Zombie.simulate (rng ()) tight in
  Alcotest.(check bool) "tight limit, smaller outbreak" true
    (o_tight.Econ.Zombie.peak_infected <= o_loose.Econ.Zombie.peak_infected)

let test_zombie_series_shape () =
  let p = Econ.Zombie.default_params in
  let o = Econ.Zombie.simulate (rng ()) p in
  Alcotest.(check int) "one point per day" p.Econ.Zombie.days
    (List.length o.Econ.Zombie.series);
  List.iter
    (fun d ->
      Alcotest.(check bool) "counts non-negative" true
        (d.Econ.Zombie.infected >= 0 && d.Econ.Zombie.virus_sent >= 0
        && d.Econ.Zombie.virus_blocked >= 0))
    o.Econ.Zombie.series

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let test_corpus_generation () =
  let p = { Econ.Corpus.default_params with Econ.Corpus.n = 2000 } in
  let docs = Econ.Corpus.generate (rng ()) p in
  Alcotest.(check int) "count" 2000 (List.length docs);
  let spam =
    List.length (List.filter (fun d -> d.Econ.Corpus.label = Econ.Corpus.Spam) docs)
  in
  Alcotest.(check bool) "spam fraction ~60%" true (abs (spam - 1200) < 120);
  List.iter
    (fun d ->
      Alcotest.(check int) "tokens per message" p.Econ.Corpus.tokens_per_message
        (List.length d.Econ.Corpus.tokens))
    docs

let test_corpus_misspell () =
  let r = rng () in
  Alcotest.(check string) "leet substitution changes token" "v1agra"
    (Econ.Corpus.misspell r "viagra");
  let t = Econ.Corpus.misspell r "xyz" in
  Alcotest.(check bool) "fallback changes token" true (t <> "xyz");
  Alcotest.(check string) "short token unchanged" "a" (Econ.Corpus.misspell r "a")

let test_corpus_adversarial_changes_tokens () =
  let clean =
    Econ.Corpus.generate (rng ())
      { Econ.Corpus.default_params with Econ.Corpus.n = 500; misspell_probability = 0. }
  in
  let dirty =
    Econ.Corpus.generate (rng ())
      { Econ.Corpus.default_params with Econ.Corpus.n = 500; misspell_probability = 1. }
  in
  let has_token tok docs =
    List.exists
      (fun d -> d.Econ.Corpus.label = Econ.Corpus.Spam && List.mem tok d.Econ.Corpus.tokens)
      docs
  in
  Alcotest.(check bool) "clean spam has 'viagra'" true (has_token "viagra" clean);
  Alcotest.(check bool) "adversarial spam hides 'viagra'" false
    (has_token "viagra" dirty)

let () =
  Alcotest.run "econ"
    [
      ( "campaign",
        [
          Alcotest.test_case "profit" `Quick test_campaign_profit;
          Alcotest.test_case "break-even" `Quick test_campaign_break_even;
          Alcotest.test_case "validation" `Quick test_campaign_validation;
          Alcotest.test_case "population" `Quick test_population;
        ] );
      ( "market",
        [
          Alcotest.test_case "median" `Quick test_market_median;
          Alcotest.test_case "volume monotone" `Quick test_market_monotone;
          Alcotest.test_case "fields" `Quick test_market_all_fields;
        ] );
      ( "users",
        [
          Alcotest.test_case "mix assignment" `Quick test_user_mix_assignment;
          Alcotest.test_case "send delay" `Quick test_user_send_delay;
          Alcotest.test_case "correspondent range" `Quick test_user_correspondent;
          Alcotest.test_case "correspondent concentration" `Quick
            test_user_correspondent_concentrated;
        ] );
      ( "adoption",
        [
          Alcotest.test_case "bootstrap with 2" `Quick test_adoption_bootstrap;
          Alcotest.test_case "monotone" `Quick test_adoption_monotone;
          Alcotest.test_case "majority" `Quick test_adoption_majority;
          Alcotest.test_case "stalls without benefit" `Quick
            test_adoption_no_seed_no_growth;
        ] );
      ( "zombie",
        [
          Alcotest.test_case "limit bounds liability" `Quick
            test_zombie_limit_bounds_liability;
          Alcotest.test_case "no limit, no detection" `Quick
            test_zombie_no_limit_no_detection;
          Alcotest.test_case "tight limit contains" `Quick
            test_zombie_tight_limit_contains_outbreak;
          Alcotest.test_case "series shape" `Quick test_zombie_series_shape;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "generation" `Quick test_corpus_generation;
          Alcotest.test_case "misspell" `Quick test_corpus_misspell;
          Alcotest.test_case "adversarial tokens" `Quick
            test_corpus_adversarial_changes_tokens;
        ] );
    ]
