(* Tests for the cryptographic substrate. *)

let rng () = Sim.Rng.create 2024

(* ------------------------------------------------------------------ *)
(* SipHash-2-4 — checked against the reference vectors of Aumasson &
   Bernstein (key 000102...0f, inputs 00, 0001, ...).                  *)
(* ------------------------------------------------------------------ *)

let reference_key : Toycrypto.Hash.key = (0x0706050403020100L, 0x0F0E0D0C0B0A0908L)

let input_bytes n = Bytes.init n (fun i -> Char.chr i)

let test_siphash_vectors () =
  let cases =
    [
      (0, 0x726fdb47dd0e0e31L);
      (1, 0x74f839c593dc67fdL);
      (2, 0x0d6c8009d9a94f5aL);
      (3, 0x85676696d7fb7e2dL);
      (8, 0x93f5f5799a932462L);
    ]
  in
  List.iter
    (fun (len, expected) ->
      Alcotest.(check int64)
        (Printf.sprintf "len %d" len)
        expected
        (Toycrypto.Hash.siphash ~key:reference_key (input_bytes len)))
    cases

let test_siphash_key_sensitivity () =
  let m = Bytes.of_string "attack at dawn" in
  let h1 = Toycrypto.Hash.siphash ~key:(1L, 2L) m in
  let h2 = Toycrypto.Hash.siphash ~key:(1L, 3L) m in
  Alcotest.(check bool) "different keys differ" true (h1 <> h2)

let test_siphash_message_sensitivity () =
  let h1 = Toycrypto.Hash.siphash_string ~key:(1L, 2L) "hello world" in
  let h2 = Toycrypto.Hash.siphash_string ~key:(1L, 2L) "hello worle" in
  Alcotest.(check bool) "one byte flips hash" true (h1 <> h2)

let test_fnv1a64 () =
  (* Known FNV-1a 64-bit values. *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Toycrypto.Hash.fnv1a64 "");
  Alcotest.(check int64) "'a'" 0xaf63dc4c8601ec8cL (Toycrypto.Hash.fnv1a64 "a")

(* ------------------------------------------------------------------ *)
(* XTEA                                                                *)
(* ------------------------------------------------------------------ *)

let test_xtea_roundtrip_block () =
  let k = Toycrypto.Xtea.key_of_words 0x00010203 0x04050607 0x08090a0b 0x0c0d0e0f in
  let blocks = [ 0L; 1L; 0x4142434445464748L; Int64.minus_one; 0x123456789ABCDEFL ] in
  List.iter
    (fun b ->
      let c = Toycrypto.Xtea.encrypt_block k b in
      Alcotest.(check bool) "cipher differs" true (c <> b);
      Alcotest.(check int64) "roundtrip" b (Toycrypto.Xtea.decrypt_block k c))
    blocks

let test_xtea_key_matters () =
  let k1 = Toycrypto.Xtea.key_of_words 1 2 3 4 in
  let k2 = Toycrypto.Xtea.key_of_words 1 2 3 5 in
  let b = 0xDEADBEEFL in
  Alcotest.(check bool) "different key, different cipher" true
    (Toycrypto.Xtea.encrypt_block k1 b <> Toycrypto.Xtea.encrypt_block k2 b)

let test_xtea_cbc_roundtrip () =
  let r = rng () in
  let k = Toycrypto.Xtea.random_key r in
  let cases =
    [ ""; "x"; "12345678"; "123456789"; String.make 1000 'z'; "e-penny payment" ]
  in
  List.iter
    (fun plain ->
      let iv = Sim.Rng.int64 r in
      let cipher = Toycrypto.Xtea.encrypt_cbc k ~iv (Bytes.of_string plain) in
      Alcotest.(check bool) "length multiple of 8" true
        (Bytes.length cipher mod 8 = 0);
      Alcotest.(check bool) "padded strictly longer" true
        (Bytes.length cipher > String.length plain);
      match Toycrypto.Xtea.decrypt_cbc k ~iv cipher with
      | Some out -> Alcotest.(check string) "roundtrip" plain (Bytes.to_string out)
      | None -> Alcotest.fail "decryption failed")
    cases

let test_xtea_cbc_wrong_key () =
  let r = rng () in
  let k1 = Toycrypto.Xtea.random_key r in
  let k2 = Toycrypto.Xtea.random_key r in
  let iv = Sim.Rng.int64 r in
  let cipher = Toycrypto.Xtea.encrypt_cbc k1 ~iv (Bytes.of_string "secret") in
  (* Wrong key almost surely breaks padding; at minimum it must not
     yield the plaintext. *)
  (match Toycrypto.Xtea.decrypt_cbc k2 ~iv cipher with
  | None -> ()
  | Some out ->
      Alcotest.(check bool) "wrong key yields garbage" true
        (Bytes.to_string out <> "secret"));
  (* Truncated input is rejected outright. *)
  Alcotest.(check bool) "truncation rejected" true
    (Toycrypto.Xtea.decrypt_cbc k1 ~iv (Bytes.sub cipher 0 4) = None)

let test_xtea_cbc_blocks_chained () =
  (* Two identical plaintext blocks must encrypt differently under CBC. *)
  let r = rng () in
  let k = Toycrypto.Xtea.random_key r in
  let plain = Bytes.of_string (String.make 16 'A') in
  let cipher = Toycrypto.Xtea.encrypt_cbc k ~iv:42L plain in
  Alcotest.(check bool) "block 0 <> block 1" true
    (Bytes.sub cipher 0 8 <> Bytes.sub cipher 8 8)

(* ------------------------------------------------------------------ *)
(* RSA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mod_pow () =
  Alcotest.(check int) "3^4 mod 5" 1 (Toycrypto.Rsa.mod_pow 3 4 5);
  Alcotest.(check int) "2^10 mod 1000" 24 (Toycrypto.Rsa.mod_pow 2 10 1000);
  Alcotest.(check int) "fermat" 1 (Toycrypto.Rsa.mod_pow 2 1_000_002 1_000_003)

let test_primality () =
  let r = rng () in
  let primes = [ 2; 3; 5; 7; 104729; 1_000_003; 32749 ] in
  let composites = [ 1; 4; 9; 104730; 1_000_001; 561; 41041 (* Carmichael *) ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p) true (Toycrypto.Rsa.is_probable_prime r p))
    primes;
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c) false
        (Toycrypto.Rsa.is_probable_prime r c))
    composites

let test_rsa_roundtrip () =
  let r = rng () in
  let pk, sk = Toycrypto.Rsa.generate r in
  let messages = [ 0; 1; 2; 12345; Toycrypto.Rsa.max_chunk pk ] in
  List.iter
    (fun m ->
      Alcotest.(check int) (string_of_int m) m
        (Toycrypto.Rsa.decrypt sk (Toycrypto.Rsa.encrypt pk m)))
    messages

let test_rsa_out_of_range () =
  let r = rng () in
  let pk, _ = Toycrypto.Rsa.generate r in
  Alcotest.(check bool) "raises on m >= n" true
    (try
       ignore (Toycrypto.Rsa.encrypt pk (Toycrypto.Rsa.max_chunk pk + 1));
       false
     with Invalid_argument _ -> true)

let test_rsa_distinct_keys () =
  let r = rng () in
  let pk1, _ = Toycrypto.Rsa.generate r in
  let pk2, sk2 = Toycrypto.Rsa.generate r in
  Alcotest.(check bool) "distinct moduli" true
    (Toycrypto.Rsa.key_id pk1 <> Toycrypto.Rsa.key_id pk2);
  (* Decrypting with the wrong key does not invert. *)
  let c = Toycrypto.Rsa.encrypt pk1 4242 in
  Alcotest.(check bool) "wrong key fails" true (Toycrypto.Rsa.decrypt sk2 c <> 4242)

let rsa_roundtrip_prop =
  QCheck.Test.make ~name:"rsa roundtrip for random messages" ~count:100
    QCheck.(pair small_nat (int_bound 10_000))
    (fun (seed, m) ->
      let r = Sim.Rng.create seed in
      let pk, sk = Toycrypto.Rsa.generate r in
      let m = m mod Toycrypto.Rsa.max_chunk pk in
      Toycrypto.Rsa.decrypt sk (Toycrypto.Rsa.encrypt pk m) = m)

(* ------------------------------------------------------------------ *)
(* Seal / unseal (NCR / DCR)                                           *)
(* ------------------------------------------------------------------ *)

let test_seal_roundtrip () =
  let r = rng () in
  let pk, sk = Toycrypto.Rsa.generate r in
  let payloads = [ ""; "x"; "buy 500 e-pennies nonce 42"; String.make 500 'q' ] in
  List.iter
    (fun p ->
      let sealed = Toycrypto.Seal.seal r pk (Bytes.of_string p) in
      match Toycrypto.Seal.unseal sk sealed with
      | Some out -> Alcotest.(check string) "roundtrip" p (Bytes.to_string out)
      | None -> Alcotest.fail "unseal failed")
    payloads

let test_seal_wrong_recipient () =
  let r = rng () in
  let pk1, _ = Toycrypto.Rsa.generate r in
  let _, sk2 = Toycrypto.Rsa.generate r in
  let sealed = Toycrypto.Seal.seal r pk1 (Bytes.of_string "for the bank only") in
  Alcotest.(check bool) "other key cannot open" true
    (Toycrypto.Seal.unseal sk2 sealed = None)

let test_seal_tamper_detected () =
  let r = rng () in
  let pk, sk = Toycrypto.Rsa.generate r in
  let sealed = Toycrypto.Seal.seal r pk (Bytes.of_string "sell 100") in
  let corrupted = Toycrypto.Seal.flip_bit sealed in
  Alcotest.(check bool) "bit flip detected" true
    (Toycrypto.Seal.unseal sk corrupted = None)

let test_seal_recipient_id () =
  let r = rng () in
  let pk, _ = Toycrypto.Rsa.generate r in
  let sealed = Toycrypto.Seal.seal r pk (Bytes.of_string "hello") in
  Alcotest.(check int) "recipient tracked" (Toycrypto.Rsa.key_id pk)
    (Toycrypto.Seal.recipient_id sealed)

let test_seal_randomized () =
  (* Sealing the same payload twice must produce different envelopes
     (fresh session key and IV). *)
  let r = rng () in
  let pk, _ = Toycrypto.Rsa.generate r in
  let a = Toycrypto.Seal.seal r pk (Bytes.of_string "same") in
  let b = Toycrypto.Seal.seal r pk (Bytes.of_string "same") in
  Alcotest.(check bool) "probabilistic encryption" true (a <> b)

let test_seal_size () =
  let r = rng () in
  let pk, _ = Toycrypto.Rsa.generate r in
  let sealed = Toycrypto.Seal.seal r pk (Bytes.of_string "0123456789") in
  Alcotest.(check bool) "size covers ciphertext and key" true
    (Toycrypto.Seal.size_bytes sealed > 10)

let seal_roundtrip_prop =
  QCheck.Test.make ~name:"seal/unseal roundtrip" ~count:100
    QCheck.(pair small_nat string)
    (fun (seed, payload) ->
      let r = Sim.Rng.create (seed + 77) in
      let pk, sk = Toycrypto.Rsa.generate r in
      let sealed = Toycrypto.Seal.seal r pk (Bytes.of_string payload) in
      Toycrypto.Seal.unseal sk sealed = Some (Bytes.of_string payload))

(* ------------------------------------------------------------------ *)
(* Nonce (NNC)                                                         *)
(* ------------------------------------------------------------------ *)

let test_nonce_nonrepetition () =
  let g = Toycrypto.Nonce.create (rng ()) in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to 10_000 do
    let n = Toycrypto.Nonce.next g in
    Alcotest.(check bool) "fresh" false (Hashtbl.mem seen n);
    Hashtbl.replace seen n ()
  done;
  Alcotest.(check int) "count" 10_000 (Toycrypto.Nonce.count g)

let test_nonce_unpredictable_low_bits () =
  (* Two generators with different seeds must not produce the same
     low-bit stream. *)
  let g1 = Toycrypto.Nonce.create (Sim.Rng.create 1) in
  let g2 = Toycrypto.Nonce.create (Sim.Rng.create 2) in
  let lows g = List.init 10 (fun _ -> Int64.logand (Toycrypto.Nonce.next g) 0xFFFFFFFFL) in
  Alcotest.(check bool) "streams differ" true (lows g1 <> lows g2)

let test_nonce_tracker () =
  let t = Toycrypto.Nonce.Tracker.create () in
  Alcotest.(check bool) "first use" true (Toycrypto.Nonce.Tracker.first_use t 42L);
  Alcotest.(check bool) "replay rejected" false
    (Toycrypto.Nonce.Tracker.first_use t 42L);
  Alcotest.(check bool) "seen" true (Toycrypto.Nonce.Tracker.seen t 42L);
  Alcotest.(check bool) "unseen" false (Toycrypto.Nonce.Tracker.seen t 43L)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "toycrypto"
    [
      ( "siphash",
        [
          Alcotest.test_case "reference vectors" `Quick test_siphash_vectors;
          Alcotest.test_case "key sensitivity" `Quick test_siphash_key_sensitivity;
          Alcotest.test_case "message sensitivity" `Quick test_siphash_message_sensitivity;
          Alcotest.test_case "fnv1a64" `Quick test_fnv1a64;
        ] );
      ( "xtea",
        [
          Alcotest.test_case "block roundtrip" `Quick test_xtea_roundtrip_block;
          Alcotest.test_case "key matters" `Quick test_xtea_key_matters;
          Alcotest.test_case "cbc roundtrip" `Quick test_xtea_cbc_roundtrip;
          Alcotest.test_case "cbc wrong key" `Quick test_xtea_cbc_wrong_key;
          Alcotest.test_case "cbc chaining" `Quick test_xtea_cbc_blocks_chained;
        ] );
      ( "rsa",
        Alcotest.test_case "mod_pow" `Quick test_mod_pow
        :: Alcotest.test_case "primality" `Quick test_primality
        :: Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip
        :: Alcotest.test_case "out of range" `Quick test_rsa_out_of_range
        :: Alcotest.test_case "distinct keys" `Quick test_rsa_distinct_keys
        :: qcheck [ rsa_roundtrip_prop ] );
      ( "seal",
        Alcotest.test_case "roundtrip" `Quick test_seal_roundtrip
        :: Alcotest.test_case "wrong recipient" `Quick test_seal_wrong_recipient
        :: Alcotest.test_case "tamper detected" `Quick test_seal_tamper_detected
        :: Alcotest.test_case "recipient id" `Quick test_seal_recipient_id
        :: Alcotest.test_case "randomized" `Quick test_seal_randomized
        :: Alcotest.test_case "size" `Quick test_seal_size
        :: qcheck [ seal_roundtrip_prop ] );
      ( "nonce",
        [
          Alcotest.test_case "nonrepetition" `Quick test_nonce_nonrepetition;
          Alcotest.test_case "unpredictable" `Quick test_nonce_unpredictable_low_bits;
          Alcotest.test_case "tracker" `Quick test_nonce_tracker;
        ] );
    ]
