(* Exhaustive verification of the §4 Abstract Protocol transcription:
   every invariant is checked in every reachable interleaving of small
   configurations. *)

let exhaust ?(max_states = 200_000) cfg invariant =
  Apn.Explore.run ~max_states ~invariant (Zmail.Ap_spec.build cfg)

let expect_exhausted name outcome =
  match outcome with
  | Apn.Explore.Exhausted { visited } ->
      Alcotest.(check bool) (name ^ ": non-trivial space") true (visited > 10);
      visited
  | Apn.Explore.Bounded { visited } ->
      Alcotest.failf "%s: truncated after %d states" name visited
  | Apn.Explore.Violation { detail; trace; _ } ->
      Alcotest.failf "%s: %s via [%s]" name detail (String.concat "; " trace)

let test_default_all_invariants () =
  let cfg = Zmail.Ap_spec.default_config in
  ignore (expect_exhausted "all invariants" (exhaust cfg (Zmail.Ap_spec.all_invariants cfg)))

let test_conservation_three_isps () =
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.n_isps = 3;
      compliant = [| true; true; true |];
      workload = [ (0, 0, 1, 0); (1, 1, 2, 1); (2, 0, 0, 0) ];
      audits = 0;
    }
  in
  ignore (expect_exhausted "conservation" (exhaust cfg (Zmail.Ap_spec.conservation cfg)))

let test_limit_never_bypassed () =
  (* Workload longer than the limit allows. *)
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.daily_limit = 1;
      workload = [ (0, 0, 1, 0); (0, 0, 1, 1); (0, 0, 1, 0); (1, 0, 0, 0) ];
      audits = 0;
    }
  in
  ignore (expect_exhausted "limit" (exhaust cfg (Zmail.Ap_spec.limit_respected cfg)))

let test_audit_clean_under_concurrency () =
  (* The crucial §4.4 theorem: even with the audit racing live email
     traffic, the snapshot protocol never reports a violation for
     honest ISPs, in any interleaving. *)
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.workload =
        [ (0, 0, 1, 0); (1, 0, 0, 1); (0, 1, 1, 1); (1, 1, 0, 0) ];
      audits = 1;
    }
  in
  ignore (expect_exhausted "audit clean" (exhaust cfg Zmail.Ap_spec.audit_clean))

let test_freeze_consistency () =
  let cfg = Zmail.Ap_spec.default_config in
  ignore
    (expect_exhausted "freeze consistency"
       (exhaust cfg (Zmail.Ap_spec.freeze_consistent cfg)))

let test_noncompliant_mix () =
  (* One non-compliant ISP in the mix: free mail flows, paid mail only
     between the compliant pair, invariants still hold. *)
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.n_isps = 3;
      compliant = [| true; true; false |];
      workload =
        [ (0, 0, 2, 0) (* free *); (2, 0, 0, 0) (* unpaid in *); (0, 1, 1, 1) (* paid *) ];
      audits = 1;
    }
  in
  ignore
    (expect_exhausted "non-compliant mix"
       (exhaust cfg (Zmail.Ap_spec.all_invariants cfg)))

let test_two_audits () =
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.workload = [ (0, 0, 1, 0); (1, 0, 0, 1) ];
      audits = 2;
    }
  in
  ignore (expect_exhausted "two audit rounds" (exhaust cfg (Zmail.Ap_spec.all_invariants cfg)))

let test_paper_literal_snapshot_race () =
  (* The headline negative result: under the paper's literal §4.4 rule
     ("report once my own outgoing channels are empty") the explorer
     finds an interleaving in which a receiver reports before a
     sender's in-flight email arrives, so two honest ISPs are accused.
     The timed simulation never hits this because delivery latency is
     tiny next to the 10-minute window — the rule is sound only under
     that timing assumption. *)
  let cfg =
    { Zmail.Ap_spec.default_config with Zmail.Ap_spec.snapshot = Zmail.Ap_spec.Paper_literal }
  in
  match exhaust cfg Zmail.Ap_spec.audit_clean with
  | Apn.Explore.Violation { detail; trace; _ } ->
      Alcotest.(check string) "false accusation"
        "audit reported a violation among honest ISPs" detail;
      Alcotest.(check bool) "short witness" true (List.length trace <= 12)
  | Apn.Explore.Exhausted _ | Apn.Explore.Bounded _ ->
      Alcotest.fail "expected the literal rule to exhibit the race"

let test_explorer_catches_seeded_bug () =
  (* Sanity for the method: a deliberately wrong invariant (balances
     never change) must be refuted. *)
  let cfg = Zmail.Ap_spec.default_config in
  let bogus (g : (Zmail.Ap_spec.state, Zmail.Ap_spec.msg) Apn.Explore.global) =
    let ok =
      Array.for_all
        (fun st ->
          match st with
          | Zmail.Ap_spec.Isp_node s ->
              List.for_all (fun b -> b = cfg.Zmail.Ap_spec.initial_balance) s.Zmail.Ap_spec.balance
          | Zmail.Ap_spec.Bank_node _ -> true)
        g.Apn.Explore.states
    in
    if ok then Ok () else Error "balance moved"
  in
  match Apn.Explore.run ~invariant:bogus (Zmail.Ap_spec.build cfg) with
  | Apn.Explore.Violation { detail; _ } ->
      Alcotest.(check string) "refuted" "balance moved" detail
  | Apn.Explore.Exhausted _ | Apn.Explore.Bounded _ ->
      Alcotest.fail "the seeded bug went undetected"

let test_three_isps_with_audit_bounded () =
  (* Three ISPs with live traffic racing a full audit: the state space
     is large, so explore a bounded prefix — no violation may appear
     anywhere within the budget. *)
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.n_isps = 3;
      compliant = [| true; true; true |];
      workload = [ (0, 0, 1, 0); (1, 0, 2, 1); (2, 1, 0, 0) ];
      audits = 1;
    }
  in
  match
    Apn.Explore.run ~max_states:300_000 ~invariant:(Zmail.Ap_spec.all_invariants cfg)
      (Zmail.Ap_spec.build cfg)
  with
  | Apn.Explore.Exhausted { visited } | Apn.Explore.Bounded { visited } ->
      Alcotest.(check bool) "explored a non-trivial space" true (visited > 1_000)
  | Apn.Explore.Violation { detail; trace; _ } ->
      Alcotest.failf "%s via [%s]" detail (String.concat "; " trace)

let test_randomized_runs_quiesce () =
  (* The randomized runtime also drives the spec to quiescence with all
     mail delivered, for several seeds. *)
  let cfg =
    {
      Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.workload = [ (0, 0, 1, 0); (1, 0, 0, 1); (0, 1, 1, 1) ];
    }
  in
  List.iter
    (fun seed ->
      let rt = Apn.Runtime.create ~seed (Zmail.Ap_spec.build cfg) in
      let _, quiescent = Apn.Runtime.run rt in
      Alcotest.(check bool) "quiescent" true quiescent;
      (* After quiescence the audit has completed cleanly. *)
      match Apn.Runtime.state rt cfg.Zmail.Ap_spec.n_isps with
      | Zmail.Ap_spec.Bank_node b ->
          Alcotest.(check bool) "no violation" false b.Zmail.Ap_spec.violation_found;
          Alcotest.(check bool) "audit ran" true (b.Zmail.Ap_spec.bank_seq = 1)
      | Zmail.Ap_spec.Isp_node _ -> Alcotest.fail "bank expected")
    [ 1; 2; 3; 4; 5 ]

let test_workload_validation () =
  let cfg =
    { Zmail.Ap_spec.default_config with Zmail.Ap_spec.workload = [ (9, 0, 0, 0) ] }
  in
  Alcotest.(check bool) "out-of-range workload rejected" true
    (try
       ignore (Zmail.Ap_spec.build cfg);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "ap_spec"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "default config, all invariants" `Quick
            test_default_all_invariants;
          Alcotest.test_case "conservation, 3 ISPs" `Quick test_conservation_three_isps;
          Alcotest.test_case "limit never bypassed" `Quick test_limit_never_bypassed;
          Alcotest.test_case "audit clean under concurrency" `Slow
            test_audit_clean_under_concurrency;
          Alcotest.test_case "freeze consistency" `Quick test_freeze_consistency;
          Alcotest.test_case "non-compliant mix" `Quick test_noncompliant_mix;
          Alcotest.test_case "two audit rounds" `Quick test_two_audits;
          Alcotest.test_case "paper-literal snapshot race" `Quick
            test_paper_literal_snapshot_race;
          Alcotest.test_case "three ISPs with audit (bounded)" `Slow
            test_three_isps_with_audit_bounded;
          Alcotest.test_case "explorer catches seeded bug" `Quick
            test_explorer_catches_seeded_bug;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "runs quiesce cleanly" `Quick test_randomized_runs_quiesce;
          Alcotest.test_case "workload validation" `Quick test_workload_validation;
        ] );
    ]
