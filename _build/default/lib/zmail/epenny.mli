(** E-penny amounts and their real-money value.

    §1.2: "The cost of sending (or value of receiving) one email message
    is a unit called an e-penny.  For simplicity, assume that the 'real
    money' cost of one e-penny is $0.01." *)

type amount = int
(** E-penny quantities are exact integers; all APIs in this library
    treat negative amounts as programming errors. *)

val dollars_per_epenny : float
(** $0.01. *)

val to_dollars : amount -> float
val of_dollars_floor : float -> amount
(** Largest whole e-penny count worth at most the given dollars;
    negative input maps to 0. *)

val check : amount -> amount
(** Identity on non-negative amounts.
    @raise Invalid_argument on a negative amount. *)
