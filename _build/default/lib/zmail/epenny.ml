type amount = int

let dollars_per_epenny = 0.01

let to_dollars n = float_of_int n *. dollars_per_epenny

let of_dollars_floor d = if d <= 0. then 0 else int_of_float (d /. dollars_per_epenny)

let check n =
  if n < 0 then invalid_arg (Printf.sprintf "Epenny.check: negative amount %d" n);
  n
