(** The paper's §4 specification transcribed into the Abstract Protocol
    runtime, for exhaustive small-configuration verification.

    Unlike {!Isp}/{!Bank} (the deployable kernels driven by the timed
    simulation), this module is a direct, state-enumerable rendering of
    the paper's guarded actions: email transfer (§4.1) and the credit
    snapshot/audit (§4.4).  The explorer checks that in {e every}
    reachable interleaving:

    - e-pennies are conserved (balances plus messages in flight);
    - the [sent]/[limit] guard is never bypassed;
    - a frozen ISP has no email in flight when it reports (the timeout
      guard is the paper's 10-minute wait, rendered as
      "outgoing channels empty");
    - an all-honest audit finds no violations.

    The bank's buy/sell path is exercised by the kernel unit tests and
    E11 instead; including it here would blow up the state space
    without strengthening the checked claims. *)

type snapshot_rule =
  | Two_phase
      (** The sound rendering of the paper's timing assumption: an ISP
          reports once every compliant ISP has frozen and its own
          channels have drained, and resumes sending only on a bank
          resume message after the audit completes.  (AP timeout guards
          may read global state, so this is expressible in the
          notation.) *)
  | Paper_literal
      (** The paper's §4.4 local rule: report when {e my own} outgoing
          channels are empty, resume immediately.  Under asynchrony
          this admits a race — a receiver can report before a sender's
          in-flight mail arrives — which the explorer exhibits as a
          false audit accusation among honest ISPs.  In the timed
          simulation the 10-minute window masks the race because
          delivery latency is milliseconds; see EXPERIMENTS.md. *)

type config = {
  n_isps : int;
  users_per_isp : int;
  compliant : bool array;
  initial_balance : int;
  daily_limit : int;
  workload : (int * int * int * int) list;
      (** Emails each ISP will try to send, as
          [(src_isp, sender, dst_isp, rcpt)] — consumed in order, which
          keeps the explored space finite. *)
  audits : int;  (** How many §4.4 audits the bank runs (0 or 1 usual). *)
  snapshot : snapshot_rule;
}

val default_config : config
(** 2 ISPs × 2 users, both compliant, balance 2, limit 2, a small
    crossing workload, one audit. *)

type isp_state = {
  isp_index : int;
  balance : int list;
  sent : int list;
  credit : int list;
  cansend : bool;
  frozen : bool;
  awaiting_resume : bool;  (** Reported, waiting for the bank ([Two_phase]). *)
  isp_seq : int;
  pending : (int * int * int) list;  (** Remaining [(sender, dst_isp, rcpt)]. *)
}

type bank_state = {
  bank_seq : int;
  audits_left : int;
  collecting : bool;
  waiting : int list;
  reported : (int * int list) list;  (** [(isp, credit row)] received. *)
  violation_found : bool;
}

type state = Isp_node of isp_state | Bank_node of bank_state

type msg =
  | Email of { sender : int; rcpt : int }
  | Audit_request of int
  | Audit_reply of { isp : int; seq : int; credit : int list }
  | Resume of int  (** Bank release after a completed audit ([Two_phase]). *)

val build : config -> (state, msg) Apn.Spec.protocol
(** Processes [0 .. n_isps-1] are ISPs; process [n_isps] is the bank. *)

val conservation : config -> (state, msg) Apn.Explore.global -> (unit, string) result
(** Invariant: Σ balances + e-pennies riding in in-flight [Email]
    messages between compliant ISPs is constant. *)

val limit_respected : config -> (state, msg) Apn.Explore.global -> (unit, string) result
(** Invariant: no [sent] counter exceeds its limit. *)

val freeze_consistent : config -> (state, msg) Apn.Explore.global -> (unit, string) result
(** Invariant: the snapshot choreography stays consistent — an ISP is
    frozen only while the bank is collecting and still waiting for that
    ISP's reply, and a frozen ISP never has [cansend] set. *)

val audit_clean : (state, msg) Apn.Explore.global -> (unit, string) result
(** Invariant: the bank never records a violation (valid for all-honest
    configurations). *)

val all_invariants : config -> (state, msg) Apn.Explore.global -> (unit, string) result
