(** The assembled Zmail Internet: n ISPs × m users on the simulated
    SMTP network, a central bank on reliable signed/sealed links, and
    workload generators — the substrate every timed experiment runs on.

    Layering per message: a user send first passes the sender-side
    kernel ({!Isp.charge_send}); if paid it is stamped with the
    [X-Zmail-Payment] header and submitted to the ISP's MTA, which runs
    the full RFC 821 dialogue to the destination MTA; the receiving
    ISP's inbound filter applies {!Isp.accept_delivery}, intercepts
    protocol traffic (mailing-list acks), and enforces the configured
    policy toward unpaid mail from non-compliant ISPs.

    Bank traffic bypasses SMTP — the paper describes the ISP–bank
    relationship as a direct accounting link — and travels over
    reliable point-to-point links with configurable latency. *)

(** Fate of unpaid mail (from non-compliant ISPs) at a compliant ISP —
    §5 lists exactly these choices: accept, "segregate or discard", or
    "require any email from a non-compliant ISP to pass a spam
    filter".  Paid mail always bypasses the policy: that is the whole
    point of the scheme. *)
type unpaid_policy =
  | Unpaid_deliver
  | Unpaid_discard
  | Unpaid_filter of { score : string list -> float; threshold : float }
      (** The message's subject and body are lowercased and
          whitespace-tokenised; it is discarded when
          [score tokens >= threshold].  Plug in
          [Baselines.Bayes_filter.spam_probability] as the scorer. *)

type config = {
  n_isps : int;
  users_per_isp : int;
  compliant : bool array;
  seed : int;
  audit_period : float option;
      (** Run a §4.4 audit every this many seconds ([None]: only
          manual {!trigger_audit}). *)
  freeze_duration : float;  (** The paper's 10 minutes. *)
  bank_link_latency : float;
  pool_check_period : float;
      (** How often ISPs evaluate §4.3 pool thresholds. *)
  unpaid_policy : unpaid_policy;
      (** Fate of mail from non-compliant ISPs at compliant ones. *)
  auto_ack : bool;  (** Generate §5 mailing-list acknowledgments. *)
  auto_topup : Epenny.amount option;
      (** §1.2's balance buffering: when a send is blocked for lack of
          e-pennies, buy this many from the ISP pool (against the
          user's real-money account) and retry once.  [None] disables.
          This is what keeps the §4.3 pool/bank loop active under
          sustained traffic. *)
  customize_isp : int -> Isp.config -> Isp.config;
      (** Per-ISP overrides (cheats, limits, pool bounds). *)
}

val default_config : n_isps:int -> users_per_isp:int -> config
(** All ISPs compliant, hourly pool checks, no automatic audits,
    10-minute freezes, 100 ms bank links, deliver unpaid mail,
    auto-ack on. *)

type t

val create : config -> t
val engine : t -> Sim.Engine.t
val config : t -> config
val isp : t -> int -> Isp.t
(** @raise Invalid_argument for a non-compliant index (they have no
    kernel). *)

val bank : t -> Bank.t
val mta : t -> int -> Smtp.Mta.t
val address : t -> isp:int -> user:int -> Smtp.Address.t
val locate : t -> Smtp.Address.t -> (int * int) option
(** Inverse of {!address}. *)

(** {1 Sending mail} *)

type send_result =
  | Submitted of [ `Paid | `Free ]
  | Deferred_snapshot  (** Buffered; will be submitted at thaw. *)
  | Rejected of Ledger.block

val send_email :
  t -> from:int * int -> to_:int * int -> ?subject:string ->
  ?spam:bool -> ?in_reply_to:string -> ?body:string -> unit -> send_result
(** Send one message from user [from] to user [to_].  [spam] tags the
    message with a ground-truth label header for measurement only —
    the protocol itself never inspects it (§1.2: "Zmail requires no
    definition of what is and is not spam").  [in_reply_to] threads the
    message under an earlier [Message-Id]. *)

(** {1 Mailing lists (§5)} *)

val host_list : t -> isp:int -> user:int -> list_id:string -> Listserv.t
(** Declare user [(isp, user)] a list distributor; the ISP will
    intercept acknowledgments addressed to it. *)

val post_to_list : t -> Listserv.t -> body:string -> int
(** Distribute a post to every subscriber (one paid send each).
    Returns the number of expansions actually submitted (those not
    blocked by balance/limit). *)

(** {1 Protocol operations} *)

val trigger_audit : t -> unit
(** Start a §4.4 audit now.
    @raise Invalid_argument if one is already running. *)

val audit_results : t -> Bank.audit_result list
(** Completed audits, oldest first. *)

val audit_results_timed : t -> (float * Bank.audit_result) list
(** As {!audit_results}, with the simulated completion time. *)

val run_days : t -> float -> unit
(** Advance simulated time by [days] days (daily resets fire at
    midnight boundaries). *)

val run_until_quiet : t -> unit
(** Drain every pending event (workloads must be finite). *)

(** {1 Workloads} *)

val profile_of : t -> isp:int -> user:int -> Econ.User_model.profile option
(** The behavioural profile assigned by {!attach_user_traffic}; [None]
    before traffic is attached. *)

val attach_user_traffic : t -> ?mix:Econ.User_model.profile list -> unit -> unit
(** Give every user at every ISP a behavioural profile from [mix]
    (default {!Econ.User_model.standard_mix}) and start their Poisson
    send processes (fresh mail plus probabilistic replies). *)

val attach_bulk_sender :
  t -> isp:int -> user:int -> per_day:float -> unit -> unit
(** A bulk mailer at [(isp, user)]: Poisson sends at [per_day] to
    uniformly random users across the world, tagged as spam. *)

(** {1 Measurement} *)

type counters = {
  mutable ham_delivered : int;
  mutable spam_delivered : int;
  mutable unpaid_discarded : int;
  mutable blocked_balance : int;
  mutable blocked_limit : int;
  mutable deferred_sends : int;
  mutable acks_generated : int;
  mutable limit_warnings : int;
}

val counters : t -> counters

val deferral_delay : t -> Sim.Stats.Summary.t
(** Seconds each snapshot-deferred message waited before submission. *)

val initial_epennies : t -> Epenny.amount
val conservation_holds : t -> bool
(** Σ compliant-ISP e-pennies − initial issue = bank outstanding —
    false only if the implementation leaked or minted money.  Note:
    transiently false while paid mail or bank replies are in flight;
    check at quiescence or between bursts. *)

val balance_drift : t -> isp:int -> user:int -> int
(** Current balance minus initial balance for one user. *)
