type member = {
  mutable missed : int;  (** Consecutive posts without an ack. *)
  mutable acked_current : bool;  (** Ack seen for the open post window. *)
}

type t = {
  list_id : string;
  address : Smtp.Address.t;
  members : (Smtp.Address.t, member) Hashtbl.t;
  mutable spent : int;
  mutable refunded : int;
  mutable post_open : bool;
}

let create ~list_id ~address =
  { list_id; address; members = Hashtbl.create 64; spent = 0; refunded = 0;
    post_open = false }

let list_id t = t.list_id
let address t = t.address

let subscribe t addr =
  if not (Hashtbl.mem t.members addr) then
    Hashtbl.replace t.members addr { missed = 0; acked_current = false }

let unsubscribe t addr = Hashtbl.remove t.members addr

let is_subscribed t addr = Hashtbl.mem t.members addr

let subscribers t =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.members [] |> List.sort Smtp.Address.compare

let subscriber_count t = Hashtbl.length t.members

let distribute t ~body ?date () =
  Hashtbl.iter (fun _ m -> m.acked_current <- false) t.members;
  t.post_open <- true;
  let expansions =
    List.map
      (fun subscriber ->
        t.spent <- t.spent + 1;
        let message =
          Smtp.Message.make ~from:t.address ~to_:[ subscriber ]
            ~subject:("[" ^ t.list_id ^ "] post") ?date ~body ()
        in
        (subscriber, Smtp.Message.add_header message "List-Id" t.list_id))
      (subscribers t)
  in
  expansions

let on_ack t ~from ~list_id =
  if list_id <> t.list_id then false
  else
    match Hashtbl.find_opt t.members from with
    | None -> false
    | Some m ->
        if m.acked_current then false  (* duplicate ack: no double refund *)
        else begin
          m.acked_current <- true;
          m.missed <- 0;
          t.refunded <- t.refunded + 1;
          true
        end

let note_post_complete t =
  if t.post_open then begin
    Hashtbl.iter (fun _ m -> if not m.acked_current then m.missed <- m.missed + 1)
      t.members;
    t.post_open <- false
  end

let prune t ~max_missed =
  if max_missed <= 0 then invalid_arg "Listserv.prune: max_missed must be positive";
  let stale =
    Hashtbl.fold (fun a m acc -> if m.missed >= max_missed then a :: acc else acc)
      t.members []
  in
  List.iter (Hashtbl.remove t.members) stale;
  List.sort Smtp.Address.compare stale

let epennies_spent t = t.spent
let epennies_refunded t = t.refunded
let net_cost t = t.spent - t.refunded
