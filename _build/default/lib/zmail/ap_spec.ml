type snapshot_rule = Two_phase | Paper_literal

type config = {
  n_isps : int;
  users_per_isp : int;
  compliant : bool array;
  initial_balance : int;
  daily_limit : int;
  workload : (int * int * int * int) list;
  audits : int;
  snapshot : snapshot_rule;
}

let default_config =
  {
    n_isps = 2;
    users_per_isp = 2;
    compliant = [| true; true |];
    initial_balance = 2;
    daily_limit = 2;
    workload = [ (0, 0, 1, 0); (1, 0, 0, 1); (0, 1, 0, 0) ];
    audits = 1;
    snapshot = Two_phase;
  }

type isp_state = {
  isp_index : int;
  balance : int list;
  sent : int list;
  credit : int list;
  cansend : bool;
  frozen : bool;
  awaiting_resume : bool;
  isp_seq : int;
  pending : (int * int * int) list;
}

type bank_state = {
  bank_seq : int;
  audits_left : int;
  collecting : bool;
  waiting : int list;
  reported : (int * int list) list;
  violation_found : bool;
}

type state = Isp_node of isp_state | Bank_node of bank_state

type msg =
  | Email of { sender : int; rcpt : int }
  | Audit_request of int
  | Audit_reply of { isp : int; seq : int; credit : int list }
  | Resume of int


let nth_add l i d = List.mapi (fun k x -> if k = i then x + d else x) l

let isp_of = function
  | Isp_node s -> s
  | Bank_node _ -> invalid_arg "Ap_spec: expected an ISP state"

let bank_of = function
  | Bank_node s -> s
  | Isp_node _ -> invalid_arg "Ap_spec: expected the bank state"

(* The §4.1 send action, applied to the head of the workload queue. *)
let apply_send cfg me (s, j, r) =
  let can_pay = List.nth me.balance s >= 1 && List.nth me.sent s < cfg.daily_limit in
  if j = me.isp_index then
    (* Local transfer: both sides settle immediately. *)
    if can_pay then
      { me with
        balance = nth_add (nth_add me.balance s (-1)) r 1;
        sent = nth_add me.sent s 1 }, []
    else me, []
  else if cfg.compliant.(j) then
    if can_pay then
      ( { me with
          balance = nth_add me.balance s (-1);
          sent = nth_add me.sent s 1;
          credit = nth_add me.credit j 1 },
        [ (j, Email { sender = s; rcpt = r }) ] )
    else (me, [])
  else
    (* §4.1: destination non-compliant — send without charge. *)
    (me, [ (j, Email { sender = s; rcpt = r }) ])

let isp_process cfg index : (state, msg) Apn.Spec.process =
  let init =
    Isp_node
      {
        isp_index = index;
        balance = List.init cfg.users_per_isp (fun _ -> cfg.initial_balance);
        sent = List.init cfg.users_per_isp (fun _ -> 0);
        credit = List.init cfg.n_isps (fun _ -> 0);
        cansend = true;
        frozen = false;
        awaiting_resume = false;
        isp_seq = 0;
        pending =
          List.filter_map
            (fun (src, s, dst, r) -> if src = index then Some (s, dst, r) else None)
            cfg.workload;
      }
  in
  let send_action =
    Apn.Spec.local ~name:"send"
      ~enabled:(fun st ->
        let me = isp_of st in
        me.cansend && me.pending <> [])
      ~apply:(fun st ->
        let me = isp_of st in
        match me.pending with
        | [] -> (st, [])
        | item :: rest ->
            let me = { me with pending = rest } in
            let me, sends =
              if cfg.compliant.(me.isp_index) then apply_send cfg me item
              else
                (* A non-compliant ISP sends freely, no accounting. *)
                let _, j, r = item in
                let _, s, _ = item in
                (me, [ (j, Email { sender = s; rcpt = r }) ])
            in
            (Isp_node me, sends))
  in
  let receive_email =
    Apn.Spec.receive ~name:"recv-email"
      ~accepts:(fun ~src:_ m ->
        match m with Email _ -> true | Audit_request _ | Audit_reply _ | Resume _ -> false)
      ~apply:(fun st ~src m ->
        let me = isp_of st in
        match m with
        | Email { rcpt; _ } ->
            if cfg.compliant.(me.isp_index) && cfg.compliant.(src) && src <> me.isp_index
            then
              ( Isp_node
                  { me with
                    balance = nth_add me.balance rcpt 1;
                    credit = nth_add me.credit src (-1) },
                [] )
            else (st, [])
        | Audit_request _ | Audit_reply _ | Resume _ -> (st, []))
  in
  let receive_request =
    Apn.Spec.receive ~name:"recv-request"
      ~accepts:(fun ~src:_ m ->
        match m with Audit_request _ -> true | Email _ | Audit_reply _ | Resume _ -> false)
      ~apply:(fun st ~src:_ m ->
        let me = isp_of st in
        match m with
        | Audit_request seq ->
            if cfg.compliant.(me.isp_index) && seq = me.isp_seq && me.cansend then
              (Isp_node { me with cansend = false; frozen = true }, [])
            else (st, [])
        | Email _ | Audit_reply _ | Resume _ -> (st, []))
  in
  let receive_resume =
    Apn.Spec.receive ~name:"recv-resume"
      ~accepts:(fun ~src:_ m ->
        match m with Resume _ -> true | Email _ | Audit_request _ | Audit_reply _ -> false)
      ~apply:(fun st ~src:_ m ->
        let me = isp_of st in
        match m with
        | Resume seq ->
            if me.awaiting_resume && seq + 1 = me.isp_seq then
              (Isp_node { me with awaiting_resume = false; cansend = true }, [])
            else (st, [])
        | Email _ | Audit_request _ | Audit_reply _ -> (st, []))
  in
  (* The paper renders the snapshot wait as a 10-minute timer — a
     timing assumption that every frozen window overlaps and covers the
     worst-case delivery latency.  [Two_phase] expresses that
     assumption logically (AP timeout guards may read global state):
     report only once every compliant ISP has frozen and all of this
     ISP's channels have drained, and resume sending only on the bank's
     resume.  [Paper_literal] keeps the paper's local rule ("my own
     outgoing channels are empty"), under which the explorer exhibits a
     false-accusation race — see EXPERIMENTS.md E10. *)
  let timeout_enabled view me =
    match cfg.snapshot with
    | Paper_literal -> me.frozen && view.Apn.Spec.outgoing_empty me.isp_index
    | Two_phase ->
        (* Every compliant peer must be inside THIS round's window:
           frozen at my sequence number, or already reported it
           (awaiting resume at seq + 1).  A peer merely pausing between
           rounds (awaiting the previous resume at my seq) will send
           again before freezing, so it does not count. *)
        me.frozen
        && view.Apn.Spec.outgoing_empty me.isp_index
        && List.for_all
             (fun j ->
               j = me.isp_index
               ||
               match view.Apn.Spec.state_of j with
               | Isp_node peer ->
                   (peer.frozen && peer.isp_seq = me.isp_seq)
                   || (peer.awaiting_resume && peer.isp_seq = me.isp_seq + 1)
               | Bank_node _ -> true)
             (List.filter (fun j -> cfg.compliant.(j)) (List.init cfg.n_isps (fun j -> j)))
        && List.for_all
             (fun j ->
               List.for_all
                 (fun m -> match m with Email _ -> false | Audit_request _ | Audit_reply _ | Resume _ -> true)
                 (view.Apn.Spec.channel ~src:j ~dst:me.isp_index))
             (List.init cfg.n_isps (fun j -> j))
  in
  let timeout =
    Apn.Spec.timeout ~name:"snapshot-timeout"
      ~enabled:(fun view st -> timeout_enabled view (isp_of st))
      ~apply:(fun st ->
        let me = isp_of st in
        let resumed = cfg.snapshot = Paper_literal in
        ( Isp_node
            { me with
              credit = List.map (fun _ -> 0) me.credit;
              isp_seq = me.isp_seq + 1;
              cansend = resumed;
              awaiting_resume = not resumed;
              frozen = false },
          [ (cfg.n_isps,
             Audit_reply { isp = me.isp_index; seq = me.isp_seq; credit = me.credit }) ] ))
  in
  { Apn.Spec.pid = index; init;
    actions = [ send_action; receive_email; receive_request; receive_resume; timeout ] }

let compliant_list cfg =
  List.filter (fun i -> cfg.compliant.(i)) (List.init cfg.n_isps (fun i -> i))

let verify_reports cfg reported =
  let row i = List.assoc i reported in
  let pairs = compliant_list cfg in
  List.exists
    (fun a ->
      List.exists
        (fun b -> a < b && List.nth (row a) b + List.nth (row b) a <> 0)
        pairs)
    pairs

let bank_process cfg : (state, msg) Apn.Spec.process =
  let init =
    Bank_node
      {
        bank_seq = 0;
        audits_left = cfg.audits;
        collecting = false;
        waiting = [];
        reported = [];
        violation_found = false;
      }
  in
  let start_audit =
    Apn.Spec.local ~name:"start-audit"
      ~enabled:(fun st ->
        let b = bank_of st in
        b.audits_left > 0 && not b.collecting)
      ~apply:(fun st ->
        let b = bank_of st in
        let targets = compliant_list cfg in
        ( Bank_node
            { b with
              audits_left = b.audits_left - 1;
              collecting = true;
              waiting = targets;
              reported = [] },
          List.map (fun i -> (i, Audit_request b.bank_seq)) targets ))
  in
  let collect =
    Apn.Spec.receive ~name:"collect-reply"
      ~accepts:(fun ~src:_ m ->
        match m with Audit_reply _ -> true | Email _ | Audit_request _ | Resume _ -> false)
      ~apply:(fun st ~src m ->
        let b = bank_of st in
        match m with
        | Audit_reply { isp; seq; credit } ->
            if b.collecting && seq = b.bank_seq && isp = src && List.mem isp b.waiting
            then begin
              let b =
                { b with
                  reported = (isp, credit) :: b.reported;
                  waiting = List.filter (fun i -> i <> isp) b.waiting }
              in
              if b.waiting = [] then
                ( Bank_node
                    { b with
                      collecting = false;
                      bank_seq = b.bank_seq + 1;
                      violation_found =
                        b.violation_found || verify_reports cfg b.reported },
                  (* Two-phase: release the frozen world. *)
                  if cfg.snapshot = Two_phase then
                    List.map (fun i -> (i, Resume b.bank_seq)) (compliant_list cfg)
                  else [] )
              else (Bank_node b, [])
            end
            else (st, [])
        | Email _ | Audit_request _ | Resume _ -> (st, []))
  in
  { Apn.Spec.pid = cfg.n_isps; init; actions = [ start_audit; collect ] }

let build cfg =
  if Array.length cfg.compliant <> cfg.n_isps then
    invalid_arg "Ap_spec.build: compliance map size mismatch";
  List.iter
    (fun (src, s, dst, r) ->
      if src < 0 || src >= cfg.n_isps || dst < 0 || dst >= cfg.n_isps
         || s < 0 || s >= cfg.users_per_isp || r < 0 || r >= cfg.users_per_isp
      then invalid_arg "Ap_spec.build: workload entry out of range")
    cfg.workload;
  Array.init (cfg.n_isps + 1) (fun i ->
      if i < cfg.n_isps then isp_process cfg i else bank_process cfg)

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let fold_isps g f init =
  let acc = ref init in
  Array.iter
    (fun st -> match st with Isp_node s -> acc := f !acc s | Bank_node _ -> ())
    g.Apn.Explore.states;
  !acc

let paid_in_flight cfg g =
  let count = ref 0 in
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst msgs ->
          if src < cfg.n_isps && dst < cfg.n_isps && src <> dst
             && cfg.compliant.(src) && cfg.compliant.(dst)
          then
            List.iter
              (fun m ->
                match m with
                | Email _ -> incr count
                | Audit_request _ | Audit_reply _ | Resume _ -> ())
              msgs)
        row)
    g.Apn.Explore.chans;
  !count

let conservation cfg g =
  let balances =
    fold_isps g
      (fun acc s ->
        if cfg.compliant.(s.isp_index) then acc + List.fold_left ( + ) 0 s.balance
        else acc)
      0
  in
  let expected =
    cfg.users_per_isp * cfg.initial_balance
    * List.length (compliant_list cfg)
  in
  let total = balances + paid_in_flight cfg g in
  if total = expected then Ok ()
  else
    Error
      (Printf.sprintf "e-pennies not conserved: %d in balances+flight, expected %d"
         total expected)

let limit_respected cfg g =
  fold_isps g
    (fun acc s ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          if List.exists (fun n -> n > cfg.daily_limit) s.sent then
            Error (Printf.sprintf "isp %d exceeded the daily limit" s.isp_index)
          else Ok ())
    (Ok ())

let freeze_consistent cfg g =
  let bank =
    match g.Apn.Explore.states.(cfg.n_isps) with
    | Bank_node b -> b
    | Isp_node _ -> invalid_arg "Ap_spec.freeze_consistent: bad bank index"
  in
  fold_isps g
    (fun acc s ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          if s.frozen && s.cansend then
            Error (Printf.sprintf "isp %d frozen but cansend" s.isp_index)
          else if
            s.frozen && not (bank.collecting && List.mem s.isp_index bank.waiting)
          then
            Error
              (Printf.sprintf "isp %d frozen while the bank is not waiting for it"
                 s.isp_index)
          else Ok ())
    (Ok ())

let audit_clean g =
  let failed =
    Array.exists
      (fun st -> match st with Bank_node b -> b.violation_found | Isp_node _ -> false)
      g.Apn.Explore.states
  in
  if failed then Error "audit reported a violation among honest ISPs" else Ok ()

let all_invariants cfg g =
  let ( let* ) = Result.bind in
  let* () = conservation cfg g in
  let* () = limit_respected cfg g in
  let* () = freeze_consistent cfg g in
  audit_clean g
