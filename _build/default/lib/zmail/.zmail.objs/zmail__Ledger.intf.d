lib/zmail/ledger.mli: Epenny
