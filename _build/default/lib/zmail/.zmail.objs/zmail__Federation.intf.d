lib/zmail/federation.mli: Bank Epenny Sim Toycrypto Wire
