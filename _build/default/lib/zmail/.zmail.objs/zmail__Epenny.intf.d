lib/zmail/epenny.mli:
