lib/zmail/ledger.ml: Array Epenny
