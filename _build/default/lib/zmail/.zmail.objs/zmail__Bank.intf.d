lib/zmail/bank.mli: Credit Epenny Sim Toycrypto Wire
