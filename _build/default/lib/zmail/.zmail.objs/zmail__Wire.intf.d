lib/zmail/wire.mli: Epenny Format Sim Toycrypto
