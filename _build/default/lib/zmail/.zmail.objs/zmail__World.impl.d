lib/zmail/world.ml: Array Bank Econ Epenny Hashtbl Isp Ledger List Listserv Logs Option Printf Queue Sim Smtp String
