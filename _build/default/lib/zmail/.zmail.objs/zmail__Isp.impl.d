lib/zmail/isp.ml: Array Credit Epenny Int64 Ledger List Sim Toycrypto Wire
