lib/zmail/federation.ml: Array Bank Credit Hashtbl List Toycrypto Wire
