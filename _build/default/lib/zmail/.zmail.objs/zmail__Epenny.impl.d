lib/zmail/epenny.ml: Printf
