lib/zmail/ap_spec.mli: Apn
