lib/zmail/wire.ml: Array Bytes Epenny Format Int64 List Printf Result String Toycrypto
