lib/zmail/world.mli: Bank Econ Epenny Isp Ledger Listserv Sim Smtp
