lib/zmail/listserv.mli: Smtp
