lib/zmail/listserv.ml: Hashtbl List Smtp
