lib/zmail/credit.mli:
