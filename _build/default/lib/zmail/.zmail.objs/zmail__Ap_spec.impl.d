lib/zmail/ap_spec.ml: Apn Array List Printf Result
