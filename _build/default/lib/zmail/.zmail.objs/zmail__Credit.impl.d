lib/zmail/credit.ml: Array Hashtbl List Option Printf
