lib/zmail/isp.mli: Epenny Ledger Sim Toycrypto Wire
