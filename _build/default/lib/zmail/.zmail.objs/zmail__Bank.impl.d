lib/zmail/bank.ml: Array Credit Hashtbl List Toycrypto Wire
