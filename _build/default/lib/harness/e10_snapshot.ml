let intensities = [ ("light", 10); ("medium", 40); ("heavy", 100) ]

let run_intensity ~seed users_per_isp =
  let world =
    Zmail.World.create
      {
        (Zmail.World.default_config ~n_isps:3 ~users_per_isp) with
        Zmail.World.seed;
        audit_period = Some (6. *. Sim.Engine.hour);
      }
  in
  Zmail.World.attach_user_traffic world ();
  Zmail.World.run_days world 1.0;
  let c = Zmail.World.counters world in
  let audits = Zmail.World.audit_results world in
  let violations =
    List.fold_left (fun acc r -> acc + List.length r.Zmail.Bank.violations) 0 audits
  in
  let delay = Zmail.World.deferral_delay world in
  ( c.Zmail.World.ham_delivered,
    List.length audits,
    c.Zmail.World.deferred_sends,
    Sim.Stats.Summary.mean delay,
    (if Sim.Stats.Summary.count delay = 0 then 0. else Sim.Stats.Summary.max delay),
    violations )

let run ?(seed = 10) () =
  let table =
    Sim.Table.create
      ~title:
        "E10: audits under live traffic (3 ISPs, audit every 6h, 10-minute \
         freeze, one simulated day)"
      ~columns:
        [
          "traffic";
          "delivered/day";
          "audits";
          "buffered sends";
          "mean buffering delay (s)";
          "max delay (s)";
          "false violations";
        ]
  in
  List.iteri
    (fun k (label, users) ->
      let delivered, audits, deferred, mean_delay, max_delay, violations =
        run_intensity ~seed:(seed + k) users
      in
      Sim.Table.add_row table
        [
          Printf.sprintf "%s (%d users/ISP)" label users;
          Sim.Table.cell_int delivered;
          Sim.Table.cell_int audits;
          Sim.Table.cell_int deferred;
          Sim.Table.cell mean_delay;
          Sim.Table.cell max_delay;
          Sim.Table.cell_int violations;
        ])
    intensities;
  [ table ]
