(** E1 — market forces against spam (§1.2).

    Paper claim: "The cost of sending spam will increase by at least
    two orders of magnitude … The response rate required to break even
    will increase similarly.  The amount of spam will undoubtedly
    decrease substantially."

    Sweeps the per-message price over a heterogeneous campaign
    population and reports who stays in business. *)

val prices : float list
(** Dollars per message: 0 to 5 e-pennies. *)

val run : ?seed:int -> unit -> Sim.Table.t list
