let periods =
  [
    ("6 hours", 6. *. Sim.Engine.hour);
    ("1 day", Sim.Engine.day);
    ("3.5 days", 3.5 *. Sim.Engine.day);
    ("7 days", 7. *. Sim.Engine.day);
  ]

let fake_receives_per_day = 3
let days = 7.5

let run_period ~seed period =
  let n_isps = 3 in
  let world =
    Zmail.World.create
      {
        (Zmail.World.default_config ~n_isps ~users_per_isp:20) with
        Zmail.World.seed;
        audit_period = Some period;
        customize_isp =
          (fun i cfg ->
            if i = 1 then
              { cfg with Zmail.Isp.cheat = Zmail.Isp.Fake_receives fake_receives_per_day }
            else cfg);
      }
  in
  Zmail.World.attach_user_traffic world ();
  Zmail.World.run_days world days;
  let audits = Zmail.World.audit_results_timed world in
  let detection =
    List.find_map
      (fun (time, r) -> if r.Zmail.Bank.suspects <> [] then Some time else None)
      audits
  in
  let stolen_before_detection =
    (* The cheat mints (peers) * k e-pennies per elapsed day. *)
    match detection with
    | None -> fake_receives_per_day * (n_isps - 1) * int_of_float days
    | Some time ->
        fake_receives_per_day * (n_isps - 1) * int_of_float (time /. Sim.Engine.day)
  in
  let bank_stats = Zmail.Bank.stats (Zmail.World.bank world) in
  let c = Zmail.World.counters world in
  ( List.length audits,
    bank_stats.Zmail.Bank.messages_in + bank_stats.Zmail.Bank.messages_out,
    c.Zmail.World.deferred_sends,
    detection,
    stolen_before_detection )

let run ?(seed = 13) () =
  let table =
    Sim.Table.create
      ~title:
        (Printf.sprintf
           "E13 (ablation): audit period vs settlement cost and fraud exposure \
            (3 ISPs, one minting %d e-pennies/peer/day, %.1f days)"
           fake_receives_per_day days)
      ~columns:
        [
          "audit period";
          "audits";
          "settlement msgs";
          "sends frozen";
          "cheater first flagged";
          "e-pennies minted before detection";
        ]
  in
  List.iteri
    (fun k (label, period) ->
      let audits, messages, deferred, detection, stolen =
        run_period ~seed:(seed + k) period
      in
      Sim.Table.add_row table
        [
          label;
          Sim.Table.cell_int audits;
          Sim.Table.cell_int messages;
          Sim.Table.cell_int deferred;
          (match detection with
          | Some time -> Printf.sprintf "day %.1f" (time /. Sim.Engine.day)
          | None -> "not within horizon");
          Sim.Table.cell_int stolen;
        ])
    periods;
  [ table ]
