(** E9 — who pays, and how much: computational challenges vs Zmail
    (§2.3).

    Paper claim: with computational approaches "email systems become
    significantly inefficient in sending and receiving email" and "the
    cost to ISPs for sending out email is dramatically increased",
    whereas Zmail's e-penny is roughly free for balanced users and
    crushing for bulk senders.

    Mints real Hashcash stamps (measured work) at several difficulties
    and compares the daily cost borne by a normal user and by a
    million-message spammer under each scheme. *)

val run : ?seed:int -> unit -> Sim.Table.t list
