(* ISP 2 is non-compliant: subscribers there never generate acks, which
   models dead/unresponsive addresses as seen from the distributor. *)

type scenario = { label : string; auto_ack : bool; dead : int; live : int; posts : int }

let scenarios =
  [
    { label = "acks on, all live"; auto_ack = true; dead = 0; live = 40; posts = 3 };
    { label = "acks on, 10% dead"; auto_ack = true; dead = 4; live = 36; posts = 3 };
    { label = "acks on, 25% dead"; auto_ack = true; dead = 10; live = 30; posts = 3 };
    { label = "acks OFF (naive Zmail)"; auto_ack = false; dead = 0; live = 40; posts = 3 };
  ]

let run_scenario ~seed s =
  let users_per_isp = 60 in
  let world =
    Zmail.World.create
      {
        (Zmail.World.default_config ~n_isps:3 ~users_per_isp) with
        Zmail.World.seed;
        compliant = [| true; true; false |];
        auto_ack = s.auto_ack;
        customize_isp =
          (fun _ c -> { c with Zmail.Isp.initial_balance = 1000; daily_limit = 5000 });
      }
  in
  let ls = Zmail.World.host_list world ~isp:0 ~user:0 ~list_id:"zmail-news" in
  (* Live subscribers split across the two compliant ISPs; dead ones at
     the non-compliant ISP. *)
  for k = 0 to s.live - 1 do
    let isp = if k mod 2 = 0 then 0 else 1 in
    Zmail.Listserv.subscribe ls (Zmail.World.address world ~isp ~user:(1 + (k / 2)))
  done;
  for k = 0 to s.dead - 1 do
    Zmail.Listserv.subscribe ls (Zmail.World.address world ~isp:2 ~user:k)
  done;
  for _ = 1 to s.posts do
    ignore (Zmail.World.post_to_list world ls ~body:"newsletter issue");
    Zmail.World.run_days world 0.05;
    Zmail.Listserv.note_post_complete ls
  done;
  let pruned = Zmail.Listserv.prune ls ~max_missed:3 in
  (ls, pruned)

let run ?(seed = 7) () =
  let table =
    Sim.Table.create
      ~title:
        "E7: mailing-list distributor economics (40-subscriber list + dead \
         addresses, 3 posts through real SMTP)"
      ~columns:
        [
          "scenario";
          "subscribers";
          "e-pennies spent";
          "refunded by acks";
          "net cost";
          "net cost/post";
          "dead pruned";
        ]
  in
  List.iteri
    (fun k s ->
      let ls, pruned = run_scenario ~seed:(seed + k) s in
      let spent = Zmail.Listserv.epennies_spent ls in
      let refunded = Zmail.Listserv.epennies_refunded ls in
      Sim.Table.add_row table
        [
          s.label;
          Sim.Table.cell_int (s.live + s.dead);
          Sim.Table.cell_int spent;
          Sim.Table.cell_int refunded;
          Sim.Table.cell_int (spent - refunded);
          Sim.Table.cell (float_of_int (spent - refunded) /. float_of_int s.posts);
          Sim.Table.cell_int (List.length pruned);
        ])
    scenarios;
  [ table ]
