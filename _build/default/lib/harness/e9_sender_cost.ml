let user_msgs_per_day = 20.
let spammer_msgs_per_day = 1_000_000.

let measured_work rng ~difficulty ~samples =
  let total = ref 0 in
  for k = 1 to samples do
    let _, w =
      Baselines.Hashcash.mint rng
        ~recipient:(Printf.sprintf "victim%d@example.com" k)
        ~difficulty
    in
    total := !total + w
  done;
  float_of_int !total /. float_of_int samples

let run ?(seed = 9) () =
  let rng = Sim.Rng.create seed in
  let table =
    Sim.Table.create
      ~title:
        "E9: sender-side cost per scheme (normal user: 20 msg/day; spammer: \
         1M msg/day; hashcash work measured by actually minting stamps)"
      ~columns:
        [
          "scheme";
          "cost per message";
          "normal user per day";
          "spammer per day";
          "spam-deterrent?";
        ]
  in
  List.iter
    (fun difficulty ->
      let samples = if difficulty <= 12 then 50 else 10 in
      let hashes = measured_work rng ~difficulty ~samples in
      let secs = hashes *. Baselines.Hashcash.seconds_per_hash in
      Sim.Table.add_row table
        [
          Printf.sprintf "hashcash d=%d (measured %.0f hashes)" difficulty hashes;
          Printf.sprintf "%.4f s CPU" secs;
          Printf.sprintf "%.2f s CPU" (secs *. user_msgs_per_day);
          Printf.sprintf "%.0f s CPU (%.1f machine-days)"
            (secs *. spammer_msgs_per_day)
            (secs *. spammer_msgs_per_day /. 86400.);
          (if secs *. spammer_msgs_per_day /. 86400. > 1. then "partly" else "no");
        ])
    [ 8; 12; 16; 20 ];
  (* Zmail: the user's net cost is the *imbalance*, not the volume. *)
  Sim.Table.add_row table
    [
      "Zmail (1 e-penny)";
      "$0.01, refunded to the receiver";
      "~$0.00 net (zero-sum flows)";
      Printf.sprintf "%s/day out of pocket"
        (Sim.Table.cell_money
           (Zmail.Epenny.to_dollars (int_of_float spammer_msgs_per_day)));
      "yes";
    ];
  [ table ]
