let trained_filter seed =
  let filter = Baselines.Bayes_filter.create () in
  Baselines.Bayes_filter.train_all filter
    (Econ.Corpus.generate (Sim.Rng.create seed)
       { Econ.Corpus.default_params with Econ.Corpus.n = 2000 });
  filter

(* Bodies that give the content filter something real to score. *)
let spam_body rng =
  String.concat " "
    (List.init 25 (fun _ -> Sim.Rng.pick rng Econ.Corpus.spam_vocabulary))

let ham_body rng =
  String.concat " "
    (List.init 25 (fun _ -> Sim.Rng.pick rng Econ.Corpus.ham_vocabulary))

let run_policy ~seed policy =
  let world =
    Zmail.World.create
      {
        (Zmail.World.default_config ~n_isps:4 ~users_per_isp:20) with
        Zmail.World.seed;
        compliant = [| true; true; false; false |];
        unpaid_policy = policy;
      }
  in
  let rng = Sim.Rng.create (seed + 1000) in
  (* Organic ham from the non-compliant side to compliant users, and a
     spam campaign from a non-compliant bulk sender. *)
  for day = 0 to 2 do
    for k = 0 to 199 do
      let to_ = (k mod 2, 1 + (k mod 19)) in
      if k mod 4 = 0 then
        ignore
          (Zmail.World.send_email world ~from:(2, 1 + (k mod 10)) ~to_
             ~subject:"project report" ~body:(ham_body rng) ())
      else
        ignore
          (Zmail.World.send_email world ~from:(3, 0) ~to_ ~spam:true
             ~subject:"winner free prize" ~body:(spam_body rng) ())
    done;
    ignore day;
    Zmail.World.run_days world 1.
  done;
  Zmail.World.run_until_quiet world;
  let c = Zmail.World.counters world in
  (c.Zmail.World.spam_delivered, c.Zmail.World.ham_delivered, c.Zmail.World.unpaid_discarded)

let run ?(seed = 14) () =
  let filter = trained_filter seed in
  let policies =
    [
      ("deliver unpaid mail", Zmail.World.Unpaid_deliver);
      ( "filter unpaid mail (Bayes)",
        Zmail.World.Unpaid_filter
          { score = Baselines.Bayes_filter.spam_probability filter; threshold = 0.9 } );
      ("discard unpaid mail", Zmail.World.Unpaid_discard);
    ]
  in
  let table =
    Sim.Table.create
      ~title:
        "E14 (ablation): unpaid-mail policy at compliant ISPs during \
         deployment (450 unpaid spam + 150 unpaid ham over 3 days)"
      ~columns:
        [ "policy"; "spam reaching users"; "legit mail delivered"; "mail discarded" ]
  in
  List.iter
    (fun (label, policy) ->
      let spam, ham, discarded = run_policy ~seed policy in
      Sim.Table.add_row table
        [
          label;
          Sim.Table.cell_int spam;
          Sim.Table.cell_int ham;
          Sim.Table.cell_int discarded;
        ])
    policies;
  [ table ]
