(** E6 — zombie containment via daily limits (§5).

    Paper claim: "ISPs can enforce a user specified limit on the number
    of e-pennies the user is willing to spend per day.  Exceeding this
    limit blocks further outgoing mail (for that day), and the user is
    sent a warning message … this provides a new mechanism for
    detecting, limiting, and disinfecting zombie PCs."

    Sweeps the daily limit over a mass-mailing-virus outbreak. *)

val run : ?seed:int -> unit -> Sim.Table.t list
