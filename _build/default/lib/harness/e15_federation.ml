(* Four ISPs homed round-robin to two banks.  ISPs 0 and 2 (bank 0's
   members) send far more than they receive, so e-pennies migrate to
   bank 1's members, whose pool sells then drain bank 1's cash. *)

let run ?(seed = 15) () =
  let rng = Sim.Rng.create seed in
  let n_isps = 4 in
  let compliant = Array.make n_isps true in
  let federation =
    Zmail.Federation.create rng (Zmail.Federation.default_config ~n_banks:2 ~n_isps)
  in
  let kernels =
    Array.init n_isps (fun i ->
        let bank = Zmail.Federation.home_of federation ~isp:i in
        Zmail.Isp.create rng
          { (Zmail.Isp.default_config ~index:i ~n_isps ~n_users:5 ~compliant
               ~bank_public:(Zmail.Federation.public_key federation ~bank))
            with
            Zmail.Isp.initial_balance = 400;
            daily_limit = 10_000;
            minavail = 200;
            maxavail = 900;
            initial_avail = 500;
            buy_amount = 500;
          })
  in
  let exchange_pools () =
    Array.iteri
      (fun i kernel ->
        match Zmail.Isp.pool_action kernel with
        | None -> ()
        | Some sealed -> (
            match Zmail.Federation.on_isp_message federation ~from_isp:i sealed with
            | Zmail.Federation.Reply signed ->
                ignore (Zmail.Isp.on_bank_message kernel signed)
            | Zmail.Federation.Rejected _ -> ()))
      kernels
  in
  (* 14 days of asymmetric flow: bank-0 members blast bank-1 members;
     light reverse traffic.  Users sell windfall e-pennies back to
     their ISP pool, which pushes the pools across their bands and
     drives federation buys/sells. *)
  for _day = 1 to 14 do
    for _ = 1 to 120 do
      let sender = if Sim.Rng.bool rng then 0 else 2 in
      let receiver = if Sim.Rng.bool rng then 1 else 3 in
      if Zmail.Isp.charge_send kernels.(sender) ~sender:0 ~dest_isp:receiver
         = Zmail.Isp.Sent_paid
      then ignore (Zmail.Isp.accept_delivery kernels.(receiver) ~from_isp:sender ~rcpt:0)
    done;
    for _ = 1 to 15 do
      if Zmail.Isp.charge_send kernels.(1) ~sender:1 ~dest_isp:0 = Zmail.Isp.Sent_paid
      then ignore (Zmail.Isp.accept_delivery kernels.(0) ~from_isp:1 ~rcpt:1)
    done;
    (* Receivers cash out; senders top up (through their ledgers). *)
    Array.iter
      (fun kernel ->
        let ledger = Zmail.Isp.ledger kernel in
        for u = 0 to 4 do
          let balance = Zmail.Ledger.balance ledger ~user:u in
          if balance > 450 then ignore (Zmail.Ledger.user_sell ledger ~user:u ~amount:(balance - 400));
          if balance < 50 then ignore (Zmail.Ledger.user_buy ledger ~user:u ~amount:100)
        done)
      kernels;
    exchange_pools ();
    Array.iter Zmail.Isp.end_of_day kernels
  done;
  let positions =
    Sim.Table.create
      ~title:
        "E15 (extension): two member banks after 14 days of asymmetric \
         cross-bank mail"
      ~columns:
        [ "bank"; "e-pennies issued - redeemed"; "cash position vs fair share" ]
  in
  let before =
    List.map
      (fun b ->
        ( b,
          Zmail.Federation.outstanding federation ~bank:b,
          Zmail.Federation.position federation ~bank:b ))
      [ 0; 1 ]
  in
  List.iter
    (fun (b, outstanding, position) ->
      Sim.Table.add_row positions
        [
          Printf.sprintf "bank %d" b;
          Sim.Table.cell_int outstanding;
          Sim.Table.cell_int position;
        ])
    before;
  let transfers = Zmail.Federation.settle federation in
  let clearing =
    Sim.Table.create ~title:"E15: clearing transfers and post-settlement positions"
      ~columns:[ "transfer"; "amount"; "positions after" ]
  in
  (match transfers with
  | [] -> Sim.Table.add_row clearing [ "(already balanced)"; "0"; "0 / 0" ]
  | ts ->
      List.iter
        (fun (from_bank, to_bank, amount) ->
          Sim.Table.add_row clearing
            [
              Printf.sprintf "bank %d -> bank %d" from_bank to_bank;
              Sim.Table.cell_int amount;
              Printf.sprintf "%d / %d"
                (Zmail.Federation.position federation ~bank:0)
                (Zmail.Federation.position federation ~bank:1);
            ])
        ts);
  (* A global audit across bank lines stays clean for honest kernels. *)
  let audit =
    Sim.Table.create ~title:"E15: global audit across member banks"
      ~columns:[ "violating pairs"; "suspects" ]
  in
  let requests = Zmail.Federation.start_audit federation in
  let result = ref None in
  List.iter
    (fun (i, signed) ->
      ignore (Zmail.Isp.on_bank_message kernels.(i) signed);
      let reply = Zmail.Isp.thaw kernels.(i) in
      match Zmail.Federation.on_audit_reply federation ~from_isp:i reply with
      | Ok (Some r) -> result := Some r
      | Ok None | Error _ -> ())
    requests;
  (match !result with
  | Some r ->
      Sim.Table.add_row audit
        [
          Sim.Table.cell_int (List.length r.Zmail.Bank.violations);
          (if r.Zmail.Bank.suspects = [] then "-"
           else String.concat "," (List.map string_of_int r.Zmail.Bank.suspects));
        ]
  | None -> Sim.Table.add_row audit [ "incomplete"; "-" ]);
  [ positions; clearing; audit ]
