(** E13 (extension/ablation) — how often should the bank audit?

    §4.4 leaves the reconciliation frequency open ("once a week or once
    a month, for example").  This ablation sweeps the audit period
    against a resident cheater and measures the trade the designer
    faces: settlement traffic and user-visible freezes against how many
    e-pennies the cheater mints before its first detection. *)

val run : ?seed:int -> unit -> Sim.Table.t list
