(** E10 — the snapshot protocol under live traffic (§4.4).

    Paper claim: "the 10 minutes timeout period is only experienced by
    ISPs, not email users … these emails will be buffered and sent
    right after the timeout expires", and the collected snapshots are
    consistent.

    Runs audits against increasing traffic intensity in the timed
    world and reports how much mail is buffered, the added latency,
    and the audit verdicts (always clean — the timing assumption holds
    when delivery latency is milliseconds against a 10-minute window;
    see {!Zmail.Ap_spec} for the untimed counterexample). *)

val run : ?seed:int -> unit -> Sim.Table.t list
