let sample_days = [ 0; 30; 60; 90; 120; 180; 240; 300; 365 ]

let trajectory_table rng params label =
  let series = Econ.Adoption.simulate rng params in
  let table =
    Sim.Table.create
      ~title:
        (Printf.sprintf
           "E5: adoption trajectory, %s (%d ISPs, %d seeded compliant)" label
           params.Econ.Adoption.n_isps params.Econ.Adoption.initial_compliant)
      ~columns:
        [
          "day";
          "compliant ISPs";
          "compliant user share";
          "spam/user/day (non-compliant)";
          "spam/user/day (compliant)";
        ]
  in
  List.iter
    (fun day ->
      match List.nth_opt series day with
      | None -> ()
      | Some p ->
          Sim.Table.add_row table
            [
              Sim.Table.cell_int p.Econ.Adoption.day;
              Sim.Table.cell_int p.Econ.Adoption.compliant_isps;
              Sim.Table.cell_pct p.Econ.Adoption.compliant_user_share;
              Sim.Table.cell p.Econ.Adoption.avg_spam_noncompliant;
              Sim.Table.cell p.Econ.Adoption.avg_spam_compliant;
            ])
    sample_days;
  (table, Econ.Adoption.days_to_majority ~total_isps:params.Econ.Adoption.n_isps series)

let run ?(seed = 5) () =
  let rng = Sim.Rng.create seed in
  let main, majority =
    trajectory_table rng Econ.Adoption.default_params "baseline network effect"
  in
  let weak_params =
    { Econ.Adoption.default_params with
      Econ.Adoption.user_switch_rate = 0.002;
      threshold_mean = 0.5 }
  in
  let weak, weak_majority =
    trajectory_table rng weak_params "weak network effect"
  in
  let summary =
    Sim.Table.create ~title:"E5: days until a majority of ISPs comply"
      ~columns:[ "variant"; "days to majority" ]
  in
  let cell = function Some d -> Sim.Table.cell_int d | None -> "never (within 365d)" in
  Sim.Table.add_row summary [ "baseline"; cell majority ];
  Sim.Table.add_row summary [ "weak network effect"; cell weak_majority ];
  [ main; weak; summary ]
