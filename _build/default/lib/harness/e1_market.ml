let prices = [ 0.; 0.0001; 0.001; 0.005; 0.01; 0.02; 0.05 ]

let run ?(seed = 1) () =
  let rng = Sim.Rng.create seed in
  let campaigns = Econ.Campaign.population rng Econ.Campaign.default_population in
  let table =
    Sim.Table.create
      ~title:
        "E1: spam market equilibrium vs per-message price (200 campaigns, \
         log-normal response rates, median $15/response)"
      ~columns:
        [
          "price (c/msg)";
          "viable campaigns";
          "monthly volume";
          "volume vs free";
          "break-even resp. rate";
          "spammer cost multiplier";
        ]
  in
  List.iter
    (fun point ->
      Sim.Table.add_row table
        [
          Sim.Table.cell (point.Econ.Market.price *. 100.);
          Printf.sprintf "%d/%d" point.Econ.Market.viable_campaigns
            point.Econ.Market.total_campaigns;
          Sim.Table.cell_int point.Econ.Market.monthly_volume;
          Sim.Table.cell_pct point.Econ.Market.volume_fraction;
          Sim.Table.cell point.Econ.Market.break_even_rate;
          Printf.sprintf "%.0fx" point.Econ.Market.spammer_cost_multiplier;
        ])
    (Econ.Market.sweep campaigns ~prices);
  [ table ]
