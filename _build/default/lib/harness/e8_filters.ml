let corpus rng ~n ~misspell ~newsletters =
  Econ.Corpus.generate rng
    {
      Econ.Corpus.default_params with
      Econ.Corpus.n;
      misspell_probability = misspell;
      newsletter_fraction = newsletters;
    }

let bayes_rows rng =
  let filter = Baselines.Bayes_filter.create () in
  (* Trained on yesterday's mail: few commercial newsletters.  The
     evaluation stream has more of them — the §2.2 false-positive
     victims. *)
  Baselines.Bayes_filter.train_all filter
    (corpus rng ~n:3000 ~misspell:0. ~newsletters:0.01);
  let eval label misspell =
    let e =
      Baselines.Bayes_filter.evaluate filter
        (corpus rng ~n:2000 ~misspell ~newsletters:0.15)
    in
    ( label,
      Baselines.Bayes_filter.recall e,
      Baselines.Bayes_filter.false_positive_rate e )
  in
  [ eval "naive Bayes (clean spam)" 0.; eval "naive Bayes (misspelled spam)" 0.9 ]

let blacklist_row rng =
  (* 60% of spam arrives from listed domains; the rest is relayed
     through clean hosts, the evasion §2.2 describes. *)
  let bl = Baselines.Blacklist.create () in
  Baselines.Blacklist.ban_domain bl "known-spammer.example";
  let n = 2000 in
  let blocked = ref 0 and spam = ref 0 in
  for _ = 1 to n do
    if Sim.Dist.bernoulli rng 0.6 then begin
      incr spam;
      let sender =
        if Sim.Dist.bernoulli rng 0.6 then "bulk@known-spammer.example"
        else "bulk@fresh-relay.example"
      in
      match Baselines.Blacklist.check bl ~sender with
      | Baselines.Blacklist.Reject_blacklisted -> incr blocked
      | Baselines.Blacklist.Accept_whitelisted | Baselines.Blacklist.Accept_unknown -> ()
    end
  done;
  ("blacklist (60% relay evasion)", float_of_int !blocked /. float_of_int !spam, 0.)

let challenge_row rng =
  let model = Baselines.Challenge.create Baselines.Challenge.default_params in
  let n = 2000 in
  let spam_total = ref 0 and spam_blocked = ref 0 in
  let ham_total = ref 0 and ham_lost = ref 0 in
  for k = 1 to n do
    let is_spam = Sim.Dist.bernoulli rng 0.6 in
    let is_automated = (not is_spam) && Sim.Dist.bernoulli rng 0.15 in
    let sender =
      if is_spam then Printf.sprintf "spam%d@bots.example" k
      else Printf.sprintf "user%d@people.example" (k mod 200)
    in
    match Baselines.Challenge.process model rng ~sender ~is_spam ~is_automated with
    | Baselines.Challenge.Dropped_spam ->
        incr spam_total;
        incr spam_blocked
    | Baselines.Challenge.Held_forever ->
        incr ham_total;
        incr ham_lost
    | Baselines.Challenge.Delivered | Baselines.Challenge.Challenged_then_delivered ->
        if is_spam then incr spam_total else incr ham_total
  done;
  ( "challenge-response",
    float_of_int !spam_blocked /. float_of_int !spam_total,
    float_of_int !ham_lost /. float_of_int !ham_total )

let zmail_row rng =
  (* Zmail suppresses spam economically: the E1 surviving-volume
     fraction at one e-penny, independent of message content — the
     misspelling adversary changes nothing. *)
  let campaigns = Econ.Campaign.population rng Econ.Campaign.default_population in
  let at_penny = Econ.Market.evaluate campaigns ~price:Econ.Market.epenny_price in
  ("Zmail (1 e-penny/message)", 1. -. at_penny.Econ.Market.volume_fraction, 0.)

let run ?(seed = 8) () =
  let rng = Sim.Rng.create seed in
  let table =
    Sim.Table.create
      ~title:
        "E8: spam blocked vs legitimate mail lost, filtering baselines vs \
         Zmail (2000-message evaluation streams)"
      ~columns:[ "approach"; "spam blocked"; "legit lost (false positives)" ]
  in
  let add (label, blocked, lost) =
    Sim.Table.add_row table
      [ label; Sim.Table.cell_pct blocked; Sim.Table.cell_pct lost ]
  in
  List.iter add (bayes_rows rng);
  add (blacklist_row rng);
  add (challenge_row rng);
  add (zmail_row rng);
  [ table ]
