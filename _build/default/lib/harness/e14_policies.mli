(** E14 (extension/ablation) — what should compliant ISPs do with
    unpaid mail during incremental deployment?

    §5 offers three options: accept it, "segregate or discard" it, or
    "require any email from a non-compliant ISP to pass a spam filter".
    This ablation runs the same mixed world (compliant and
    non-compliant ISPs, organic ham plus bulk spam from the
    non-compliant side) under each policy and measures what compliant
    users experience. *)

val run : ?seed:int -> unit -> Sim.Table.t list
