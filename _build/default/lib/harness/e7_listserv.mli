(** E7 — mailing lists under Zmail (§5).

    Paper claim: the automatic acknowledgment "returns the e-penny back
    to the distributor", and "the email distributor can automatically
    keep track of which addresses do not acknowledge messages and
    should be removed from its subscriber database".

    Runs list posts through the full world (real SMTP, real acks) with
    the acknowledgment mechanism on and off, and with a share of dead
    subscribers. *)

val run : ?seed:int -> unit -> Sim.Table.t list
