let setup ~seed ~hardened =
  let rng = Sim.Rng.create seed in
  let compliant = [| true |] in
  let bank =
    Zmail.Bank.create rng
      { (Zmail.Bank.default_config ~n_isps:1 ~compliant) with
        Zmail.Bank.replay_hardening = hardened }
  in
  let isp =
    Zmail.Isp.create rng
      { (Zmail.Isp.default_config ~index:0 ~n_isps:1 ~n_users:4 ~compliant
           ~bank_public:(Zmail.Bank.public_key bank))
        with
        Zmail.Isp.initial_avail = 100;
        replay_hardening = hardened;
      }
  in
  (rng, bank, isp)

(* Run one legitimate buy exchange, returning the pieces an on-path
   attacker can capture. *)
let legitimate_buy bank isp =
  match Zmail.Isp.pool_action isp with
  | None -> failwith "expected a buy request"
  | Some sealed_buy -> (
      match Zmail.Bank.on_isp_message bank ~from_isp:0 sealed_buy with
      | Zmail.Bank.Reply signed_reply ->
          ignore (Zmail.Isp.on_bank_message isp signed_reply);
          (sealed_buy, signed_reply)
      | _ -> failwith "expected a bank reply")

let attack_duplicate_buy ~seed ~hardened =
  let _, bank, isp = setup ~seed ~hardened in
  let sealed_buy, _ = legitimate_buy bank isp in
  let account_before = Zmail.Bank.account_balance bank ~isp:0 in
  ignore (Zmail.Bank.on_isp_message bank ~from_isp:0 sealed_buy);
  account_before - Zmail.Bank.account_balance bank ~isp:0

let attack_duplicate_reply ~seed ~hardened =
  let _, bank, isp = setup ~seed ~hardened in
  let _, signed_reply = legitimate_buy bank isp in
  let pool_before = Zmail.Ledger.avail (Zmail.Isp.ledger isp) in
  ignore (Zmail.Isp.on_bank_message isp signed_reply);
  Zmail.Ledger.avail (Zmail.Isp.ledger isp) - pool_before

let attack_tampered_envelope ~seed ~hardened =
  let _, bank, isp = setup ~seed ~hardened in
  match Zmail.Isp.pool_action isp with
  | None -> failwith "expected a buy request"
  | Some sealed_buy -> (
      let account_before = Zmail.Bank.account_balance bank ~isp:0 in
      match
        Zmail.Bank.on_isp_message bank ~from_isp:0 (Toycrypto.Seal.flip_bit sealed_buy)
      with
      | Zmail.Bank.Rejected _ -> account_before - Zmail.Bank.account_balance bank ~isp:0
      | _ -> max_int)

let attack_forged_signature ~seed ~hardened =
  let rng, _, isp = setup ~seed ~hardened in
  (* An attacker without the bank key signs with its own. *)
  let _, attacker_sk = Toycrypto.Rsa.generate rng in
  let forged =
    Zmail.Wire.sign_by_bank attacker_sk (Zmail.Wire.Audit_request { seq = 0 })
  in
  match Zmail.Isp.on_bank_message isp forged with
  | Zmail.Isp.No_reaction -> if Zmail.Isp.frozen isp then max_int else 0
  | Zmail.Isp.Start_snapshot_timer -> max_int

let run ?(seed = 11) () =
  let table =
    Sim.Table.create
      ~title:
        "E11: adversarial bank-channel traffic — money moved by each attack \
         (0 = attack neutralized; the ablated column drops the nonce \
         tracking / outstanding-request checks)"
      ~columns:
        [ "attack"; "hardened kernels"; "ablated (paper-literal)"; "unit" ]
  in
  let row label attack unit =
    Sim.Table.add_row table
      [
        label;
        Sim.Table.cell_int (attack ~seed ~hardened:true);
        Sim.Table.cell_int (attack ~seed ~hardened:false);
        unit;
      ]
  in
  row "duplicate sealed BUY at bank" attack_duplicate_buy "extra pennies debited";
  row "duplicate signed BUYREPLY at ISP" attack_duplicate_reply
    "phantom pool e-pennies";
  row "bit-flipped envelope" attack_tampered_envelope "pennies moved";
  row "forged bank signature" attack_forged_signature "freezes triggered";
  [ table ]
