(** E5 — incremental deployment dynamics (§1.3, §5).

    Paper claim: "It can be bootstrapped with as few as two compliant
    ISPs … The good experience of the users of compliant ISPs will
    attract more people to switch to compliant ISPs and more ISPs will
    therefore become compliant."

    Threshold-adoption trajectory seeded with two compliant ISPs, plus
    a sensitivity row for weaker network effects. *)

val run : ?seed:int -> unit -> Sim.Table.t list
