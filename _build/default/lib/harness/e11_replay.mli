(** E11 — replay and forgery attacks on the bank channel (§4.3).

    Paper claim: "we add nonces to prevent message replay attacks."

    Runs concrete attacks (duplicated [buy] at the bank, duplicated
    [buyreply] at the ISP, bit-flipped envelopes, forged signatures)
    against the hardened kernels and against an ablated/paper-literal
    configuration, and reports the money that moves.  The duplicated
    [buyreply] row documents a genuine gap in the paper's literal
    acceptance rule (see {!Zmail.Isp}). *)

val run : ?seed:int -> unit -> Sim.Table.t list
