lib/harness/e15_federation.ml: Array List Printf Sim String Zmail
