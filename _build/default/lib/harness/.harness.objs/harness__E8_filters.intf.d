lib/harness/e8_filters.mli: Sim
