lib/harness/e2_zero_sum.ml: Econ Hashtbl List Printf Sim Zmail
