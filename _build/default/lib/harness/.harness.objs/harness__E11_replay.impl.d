lib/harness/e11_replay.ml: Sim Toycrypto Zmail
