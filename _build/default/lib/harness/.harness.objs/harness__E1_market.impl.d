lib/harness/e1_market.ml: Econ List Printf Sim
