lib/harness/e5_adoption.ml: Econ List Printf Sim
