lib/harness/e6_zombies.ml: Econ Float List Sim Zmail
