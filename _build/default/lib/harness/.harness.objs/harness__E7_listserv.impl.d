lib/harness/e7_listserv.ml: List Sim Zmail
