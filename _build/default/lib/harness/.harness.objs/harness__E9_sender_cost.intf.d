lib/harness/e9_sender_cost.mli: Sim
