lib/harness/e10_snapshot.mli: Sim
