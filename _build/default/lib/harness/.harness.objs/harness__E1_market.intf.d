lib/harness/e1_market.mli: Sim
