lib/harness/e14_policies.mli: Sim
