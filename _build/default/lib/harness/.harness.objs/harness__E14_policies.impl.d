lib/harness/e14_policies.ml: Baselines Econ List Sim String Zmail
