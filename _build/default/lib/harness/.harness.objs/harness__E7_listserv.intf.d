lib/harness/e7_listserv.mli: Sim
