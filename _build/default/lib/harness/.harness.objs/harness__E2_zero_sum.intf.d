lib/harness/e2_zero_sum.mli: Sim
