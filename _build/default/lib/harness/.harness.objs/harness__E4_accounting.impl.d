lib/harness/e4_accounting.ml: Array Baselines Printf Sim Toycrypto Zmail
