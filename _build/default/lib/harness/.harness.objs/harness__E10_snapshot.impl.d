lib/harness/e10_snapshot.ml: List Printf Sim Zmail
