lib/harness/e4_accounting.mli: Sim
