lib/harness/e9_sender_cost.ml: Baselines List Printf Sim Zmail
