lib/harness/e8_filters.ml: Baselines Econ List Printf Sim
