lib/harness/e5_adoption.mli: Sim
