lib/harness/e13_audit_period.mli: Sim
