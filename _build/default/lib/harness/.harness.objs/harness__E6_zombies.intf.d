lib/harness/e6_zombies.mli: Sim
