lib/harness/e3_detection.ml: List Printf Sim String Zmail
