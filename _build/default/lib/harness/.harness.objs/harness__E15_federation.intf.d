lib/harness/e15_federation.mli: Sim
