lib/harness/experiments.mli: Sim
