lib/harness/e13_audit_period.ml: List Printf Sim Zmail
