lib/harness/e3_detection.mli: Sim
