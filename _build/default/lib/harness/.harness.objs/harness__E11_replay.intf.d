lib/harness/e11_replay.mli: Sim
