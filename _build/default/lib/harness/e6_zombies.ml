let limits = [ 10; 50; 100; 500; 1000; max_int ]

let limit_label l = if l = max_int then "unlimited" else string_of_int l

let run ?(seed = 6) () =
  let table =
    Sim.Table.create
      ~title:
        "E6: mass-mailing virus outbreak vs daily spending limit (1000 \
         users, 3 seeds, 2000 virus sends/day per zombie, 30 days)"
      ~columns:
        [
          "daily limit";
          "peak infected";
          "virus delivered";
          "max user liability";
          "mean detection day";
          "legit mail blocked";
        ]
  in
  List.iter
    (fun daily_limit ->
      let rng = Sim.Rng.create seed in
      let params = { Econ.Zombie.default_params with Econ.Zombie.daily_limit } in
      let o = Econ.Zombie.simulate rng params in
      let legit_blocked =
        List.fold_left
          (fun acc d -> acc + d.Econ.Zombie.legit_blocked)
          0 o.Econ.Zombie.series
      in
      Sim.Table.add_row table
        [
          limit_label daily_limit;
          Sim.Table.cell_int o.Econ.Zombie.peak_infected;
          Sim.Table.cell_int o.Econ.Zombie.total_virus_delivered;
          Sim.Table.cell_money
            (Zmail.Epenny.to_dollars o.Econ.Zombie.max_user_liability_epennies);
          (if Float.is_nan o.Econ.Zombie.mean_detection_day then "never"
           else Sim.Table.cell o.Econ.Zombie.mean_detection_day);
          Sim.Table.cell_int legit_blocked;
        ])
    limits;
  [ table ]
