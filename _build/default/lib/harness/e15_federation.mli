(** E15 (extension) — distributed banks and inter-bank clearing.

    §5 ("Bank Setup"): "the role of the bank in the Zmail protocol can
    be implemented as a set of distributed banks".  This experiment
    runs ISP kernels homed to two member banks with asymmetric
    cross-bank mail flow, shows the cash imbalance that e-penny
    migration creates, the clearing transfers that fix it, and a global
    audit that catches a cheater across bank lines. *)

val run : ?seed:int -> unit -> Sim.Table.t list
