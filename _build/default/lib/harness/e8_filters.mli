(** E8 — content/header filtering vs economic suppression (§1.2, §2.2).

    Paper claims: "False positives in filtering out spam are not
    acceptable…", "spammers can always find ways to deceive
    [filters]" (misspelling), and "Using Zmail, spammers' efforts to
    evade definitions of spam become irrelevant."

    Trains a naive-Bayes filter on a clean corpus, evaluates it on
    clean and adversarially misspelled corpora, runs the blacklist and
    challenge–response baselines on the same stream, and puts Zmail's
    E1 market suppression (which is content-blind) beside them. *)

val run : ?seed:int -> unit -> Sim.Table.t list
