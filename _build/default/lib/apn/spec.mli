(** Abstract Protocol notation (Gouda, {e Elements of Network Protocol
    Design}): protocol specifications as guarded-action processes.

    A protocol is a fixed array of processes connected by one FIFO
    channel per ordered pair.  Each process has a set of actions of the
    three forms the notation allows:

    - {e local} — guard is a predicate over the process's own state;
    - {e receive} — guard is "the head of some incoming channel is a
      message this action accepts"; executing it consumes that message;
    - {e timeout} — guard may read a restricted global view (the paper
      only ever needs "all my outgoing channels are empty", which is the
      operational meaning of its 10-minute snapshot timeout).

    Executing an action atomically updates the process state and sends
    messages.  The paper's [par] keyword (a finite family of actions,
    one per parameter value) is expressed by generating one action per
    parameter value; {!local} etc. are plain constructors so this is
    ordinary list building.

    The state type ['s] and message type ['m] must be immutable,
    structurally comparable values: the explorer uses them as hash-table
    keys. *)

type pid = int
(** Process identifier, an index into the protocol's process array. *)

type ('s, 'm) view = {
  outgoing_empty : pid -> bool;
      (** [outgoing_empty p] is [true] when every channel {e from} [p]
          is empty. *)
  channel : src:pid -> dst:pid -> 'm list;
      (** Contents of a channel, head first. *)
  state_of : pid -> 's;  (** Peek at another process's state. *)
}
(** The restricted global view available to timeout guards. *)

type ('s, 'm) effect = 's * (pid * 'm) list
(** Result of executing an action: the new state and the messages to
    send, as [(destination, message)] pairs, sent in list order. *)

type ('s, 'm) action = private
  | Local of {
      name : string;
      enabled : 's -> bool;
      apply : 's -> ('s, 'm) effect;
    }
  | Receive of {
      name : string;
      accepts : src:pid -> 'm -> bool;
      apply : 's -> src:pid -> 'm -> ('s, 'm) effect;
    }
  | Timeout of {
      name : string;
      enabled : ('s, 'm) view -> 's -> bool;
      apply : 's -> ('s, 'm) effect;
    }

val local :
  name:string -> enabled:('s -> bool) -> apply:('s -> ('s, 'm) effect) ->
  ('s, 'm) action

val receive :
  name:string ->
  accepts:(src:pid -> 'm -> bool) ->
  apply:('s -> src:pid -> 'm -> ('s, 'm) effect) ->
  ('s, 'm) action

val timeout :
  name:string ->
  enabled:(('s, 'm) view -> 's -> bool) ->
  apply:('s -> ('s, 'm) effect) ->
  ('s, 'm) action

val action_name : ('s, 'm) action -> string

type ('s, 'm) process = {
  pid : pid;
  init : 's;
  actions : ('s, 'm) action list;
}

type ('s, 'm) protocol = ('s, 'm) process array
(** Processes must be stored at index [pid]; {!validate} checks this. *)

val validate : ('s, 'm) protocol -> unit
(** @raise Invalid_argument if process ids do not match their indices
    or the protocol is empty. *)
