lib/apn/runtime.mli: Spec
