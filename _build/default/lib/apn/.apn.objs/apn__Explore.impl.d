lib/apn/explore.ml: Array Hashtbl List Printf Queue Spec
