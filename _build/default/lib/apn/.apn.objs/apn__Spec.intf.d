lib/apn/spec.mli:
