lib/apn/explore.mli: Spec
