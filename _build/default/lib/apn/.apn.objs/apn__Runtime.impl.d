lib/apn/runtime.ml: Array List Queue Sim Spec
