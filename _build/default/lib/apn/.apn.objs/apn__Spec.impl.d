lib/apn/spec.ml: Array Printf
