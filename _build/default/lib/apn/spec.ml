type pid = int

type ('s, 'm) view = {
  outgoing_empty : pid -> bool;
  channel : src:pid -> dst:pid -> 'm list;
  state_of : pid -> 's;
}

type ('s, 'm) effect = 's * (pid * 'm) list

type ('s, 'm) action =
  | Local of {
      name : string;
      enabled : 's -> bool;
      apply : 's -> ('s, 'm) effect;
    }
  | Receive of {
      name : string;
      accepts : src:pid -> 'm -> bool;
      apply : 's -> src:pid -> 'm -> ('s, 'm) effect;
    }
  | Timeout of {
      name : string;
      enabled : ('s, 'm) view -> 's -> bool;
      apply : 's -> ('s, 'm) effect;
    }

let local ~name ~enabled ~apply = Local { name; enabled; apply }
let receive ~name ~accepts ~apply = Receive { name; accepts; apply }
let timeout ~name ~enabled ~apply = Timeout { name; enabled; apply }

let action_name = function
  | Local { name; _ } | Receive { name; _ } | Timeout { name; _ } -> name

type ('s, 'm) process = {
  pid : pid;
  init : 's;
  actions : ('s, 'm) action list;
}

type ('s, 'm) protocol = ('s, 'm) process array

let validate protocol =
  if Array.length protocol = 0 then invalid_arg "Spec.validate: empty protocol";
  Array.iteri
    (fun i p ->
      if p.pid <> i then
        invalid_arg
          (Printf.sprintf "Spec.validate: process at index %d has pid %d" i p.pid))
    protocol
