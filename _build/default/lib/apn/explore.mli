(** Bounded exhaustive state-space exploration of {!Spec} protocols.

    Breadth-first search over global states (all process states plus
    all channel contents).  At every reached state a user invariant is
    checked; the first violation is reported with the action trace that
    leads to it.  This is how the repository {e verifies} the paper's
    §4 claims (zero-sum conservation, credit antisymmetry, replay
    safety) for small configurations, rather than merely asserting them
    on a handful of runs. *)

type ('s, 'm) global = {
  states : 's array;  (** Process states, indexed by pid. *)
  chans : 'm list array array;
      (** [chans.(src).(dst)] is the channel contents, head first. *)
}

type ('s, 'm) outcome =
  | Exhausted of { visited : int }
      (** Every reachable state (within the depth bound none was cut)
          satisfied the invariant. *)
  | Bounded of { visited : int }
      (** No violation found, but the walk was truncated by
          [max_states] or [max_depth]. *)
  | Violation of { trace : string list; state : ('s, 'm) global; detail : string }
      (** An invariant failure: the action names leading to the bad
          state, the state itself, and the invariant's explanation. *)

val initial : ('s, 'm) Spec.protocol -> ('s, 'm) global
(** The protocol's initial global state (all channels empty). *)

val successors : ('s, 'm) Spec.protocol -> ('s, 'm) global -> (string * ('s, 'm) global) list
(** All one-action successor states, tagged with the action name. *)

val run :
  ?max_states:int ->
  ?max_depth:int ->
  invariant:(('s, 'm) global -> (unit, string) result) ->
  ('s, 'm) Spec.protocol ->
  ('s, 'm) outcome
(** [run ~invariant protocol] explores breadth-first from the initial
    state.  Defaults: [max_states = 100_000], [max_depth] unbounded.
    The state and message types must support structural equality and
    hashing. *)
