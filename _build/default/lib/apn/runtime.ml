type 'm tamper = src:Spec.pid -> dst:Spec.pid -> 'm -> 'm list

type ('s, 'm) t = {
  spec : ('s, 'm) Spec.protocol;
  states : 's array;
  chans : 'm Queue.t array array;
  rng : Sim.Rng.t;
  tamper : 'm tamper;
  record_trace : bool;
  mutable executed : int;
  mutable history : (Spec.pid * string) list;
}

let faithful ~src:_ ~dst:_ m = [ m ]

let create ?(seed = 0) ?(tamper = faithful) ?(record_trace = false) spec =
  Spec.validate spec;
  let n = Array.length spec in
  {
    spec;
    states = Array.map (fun (p : ('s, 'm) Spec.process) -> p.init) spec;
    chans = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
    rng = Sim.Rng.create seed;
    tamper;
    record_trace;
    executed = 0;
    history = [];
  }

let state t pid = t.states.(pid)

let channel t ~src ~dst =
  List.rev (Queue.fold (fun acc m -> m :: acc) [] t.chans.(src).(dst))

let inject t ~src ~dst m = Queue.push m t.chans.(src).(dst)

let view t : ('s, 'm) Spec.view =
  {
    outgoing_empty =
      (fun p ->
        let empty = ref true in
        Array.iter (fun q -> if not (Queue.is_empty q) then empty := false) t.chans.(p);
        !empty);
    channel = (fun ~src ~dst -> channel t ~src ~dst);
    state_of = (fun p -> t.states.(p));
  }

(* A candidate is an enabled action together with the channel source it
   would receive from (for receive actions). *)
type candidate = { proc : Spec.pid; index : int; source : Spec.pid option }

let candidates t =
  let n = Array.length t.spec in
  let found = ref [] in
  let global = view t in
  for p = 0 to n - 1 do
    List.iteri
      (fun index action ->
        match (action : ('s, 'm) Spec.action) with
        | Local { enabled; _ } ->
            if enabled t.states.(p) then
              found := { proc = p; index; source = None } :: !found
        | Timeout { enabled; _ } ->
            if enabled global t.states.(p) then
              found := { proc = p; index; source = None } :: !found
        | Receive { accepts; _ } ->
            for src = 0 to n - 1 do
              match Queue.peek_opt t.chans.(src).(p) with
              | Some m when accepts ~src m ->
                  found := { proc = p; index; source = Some src } :: !found
              | Some _ | None -> ()
            done)
      t.spec.(p).actions
  done;
  !found

let enabled_count t = List.length (candidates t)

let perform t cand =
  let process = t.spec.(cand.proc) in
  let action = List.nth process.actions cand.index in
  let state = t.states.(cand.proc) in
  let name = Spec.action_name action in
  let new_state, sends =
    match (action, cand.source) with
    | Spec.Local { apply; _ }, None | Spec.Timeout { apply; _ }, None ->
        apply state
    | Spec.Receive { apply; _ }, Some src ->
        let m = Queue.pop t.chans.(src).(cand.proc) in
        apply state ~src m
    | (Spec.Local _ | Spec.Timeout _), Some _ | Spec.Receive _, None ->
        assert false
  in
  t.states.(cand.proc) <- new_state;
  List.iter
    (fun (dst, m) ->
      List.iter
        (fun m' -> Queue.push m' t.chans.(cand.proc).(dst))
        (t.tamper ~src:cand.proc ~dst m))
    sends;
  t.executed <- t.executed + 1;
  if t.record_trace then t.history <- (cand.proc, name) :: t.history

let step t =
  match candidates t with
  | [] -> false
  | all ->
      let pick = List.nth all (Sim.Rng.int t.rng (List.length all)) in
      perform t pick;
      true

let run ?(max_steps = 100_000) t =
  let rec loop n = if n >= max_steps then (n, false) else if step t then loop (n + 1) else (n, true) in
  loop 0

let steps t = t.executed

let trace t = List.rev t.history
