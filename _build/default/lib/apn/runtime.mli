(** Randomized weakly-fair executor for {!Spec} protocols.

    Each step picks uniformly at random among all enabled actions and
    executes it atomically, which realises the notation's execution
    rules (one action at a time; an action whose guard is continuously
    true is eventually executed, with probability one).

    The executor can also inject channel faults through a {!tamper}
    hook, used by the replay-attack experiment (E11) to duplicate
    messages in flight. *)

type 'm tamper = src:Spec.pid -> dst:Spec.pid -> 'm -> 'm list
(** Applied to every sent message; the returned list is what actually
    enters the channel.  [fun ~src:_ ~dst:_ m -> [m]] is the faithful
    channel; [[]] drops; [[m; m]] duplicates (a replay). *)

type ('s, 'm) t

val create :
  ?seed:int -> ?tamper:'m tamper -> ?record_trace:bool -> ('s, 'm) Spec.protocol ->
  ('s, 'm) t
(** Build an executor in the protocol's initial state.  [record_trace]
    (default [false]) keeps the executed action sequence for
    inspection. *)

val state : ('s, 'm) t -> Spec.pid -> 's
(** Current state of a process. *)

val channel : ('s, 'm) t -> src:Spec.pid -> dst:Spec.pid -> 'm list
(** Channel contents, head first. *)

val inject : ('s, 'm) t -> src:Spec.pid -> dst:Spec.pid -> 'm -> unit
(** Append a message to a channel from outside the protocol (an
    adversary's forgery). *)

val enabled_count : ('s, 'm) t -> int
(** Number of currently enabled (process, action) candidates. *)

val step : ('s, 'm) t -> bool
(** Execute one randomly chosen enabled action.  [false] when the
    protocol is quiescent (nothing enabled). *)

val run : ?max_steps:int -> ('s, 'm) t -> int * bool
(** [run t] steps until quiescence or until [max_steps] (default
    [100_000]) actions have run.  Returns [(steps_executed,
    quiescent)]. *)

val steps : ('s, 'm) t -> int
(** Total actions executed so far. *)

val trace : ('s, 'm) t -> (Spec.pid * string) list
(** Executed [(process, action-name)] pairs in execution order; empty
    unless [record_trace] was set. *)
