type ('s, 'm) global = {
  states : 's array;
  chans : 'm list array array;
}

type ('s, 'm) outcome =
  | Exhausted of { visited : int }
  | Bounded of { visited : int }
  | Violation of { trace : string list; state : ('s, 'm) global; detail : string }

let initial spec =
  Spec.validate spec;
  let n = Array.length spec in
  {
    states = Array.map (fun (p : ('s, 'm) Spec.process) -> p.init) spec;
    chans = Array.make_matrix n n [];
  }

let copy_chans chans = Array.map Array.copy chans

let with_state g pid s =
  let states = Array.copy g.states in
  states.(pid) <- s;
  { g with states }

let enqueue_sends g src sends =
  let chans = copy_chans g.chans in
  List.iter (fun (dst, m) -> chans.(src).(dst) <- chans.(src).(dst) @ [ m ]) sends;
  { g with chans }

let view_of g : ('s, 'm) Spec.view =
  {
    outgoing_empty = (fun p -> Array.for_all (fun c -> c = []) g.chans.(p));
    channel = (fun ~src ~dst -> g.chans.(src).(dst));
    state_of = (fun p -> g.states.(p));
  }

let successors spec g =
  let n = Array.length spec in
  let next = ref [] in
  let emit name g' = next := (name, g') :: !next in
  let global_view = view_of g in
  for p = 0 to n - 1 do
    let tag name = Printf.sprintf "%d:%s" p name in
    List.iter
      (fun action ->
        match (action : ('s, 'm) Spec.action) with
        | Spec.Local { name; enabled; apply } ->
            if enabled g.states.(p) then begin
              let s', sends = apply g.states.(p) in
              emit (tag name) (enqueue_sends (with_state g p s') p sends)
            end
        | Spec.Timeout { name; enabled; apply } ->
            if enabled global_view g.states.(p) then begin
              let s', sends = apply g.states.(p) in
              emit (tag name) (enqueue_sends (with_state g p s') p sends)
            end
        | Spec.Receive { name; accepts; apply } ->
            for src = 0 to n - 1 do
              match g.chans.(src).(p) with
              | m :: rest when accepts ~src m ->
                  let s', sends = apply g.states.(p) ~src m in
                  let g' = with_state g p s' in
                  let chans = copy_chans g'.chans in
                  chans.(src).(p) <- rest;
                  let g' = enqueue_sends { g' with chans } p sends in
                  emit (tag (Printf.sprintf "%s<-%d" name src)) g'
              | _ :: _ | [] -> ()
            done)
      spec.(p).Spec.actions
  done;
  List.rev !next

let run ?(max_states = 100_000) ?max_depth ~invariant spec =
  let start = initial spec in
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let depth_ok depth =
    match max_depth with None -> true | Some d -> depth < d
  in
  let truncated = ref false in
  let check g trace =
    match invariant g with
    | Ok () -> None
    | Error detail -> Some (Violation { trace = List.rev trace; state = g; detail })
  in
  match check start [] with
  | Some v -> v
  | None ->
      Hashtbl.replace visited start ();
      Queue.push (start, 0, []) queue;
      let result = ref None in
      while !result = None && not (Queue.is_empty queue) do
        let g, depth, trace = Queue.pop queue in
        if depth_ok depth then
          List.iter
            (fun (name, g') ->
              if !result = None && not (Hashtbl.mem visited g') then begin
                match check g' (name :: trace) with
                | Some v -> result := Some v
                | None ->
                    if Hashtbl.length visited >= max_states then truncated := true
                    else begin
                      Hashtbl.replace visited g' ();
                      Queue.push (g', depth + 1, name :: trace) queue
                    end
              end)
            (successors spec g)
        else truncated := true
      done;
      (match !result with
      | Some v -> v
      | None ->
          let visited = Hashtbl.length visited in
          if !truncated then Bounded { visited } else Exhausted { visited })
