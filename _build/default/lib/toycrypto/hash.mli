(** SipHash-2-4 (Aumasson & Bernstein), a keyed 64-bit hash.

    Used as the MAC inside {!Seal} and anywhere the protocol needs a
    short authenticator.  This is the real algorithm, not a toy; only
    the surrounding key sizes in {!Rsa} are toy-scaled. *)

type key = int64 * int64
(** A 128-bit key as two little-endian 64-bit halves. *)

val siphash : key:key -> bytes -> int64
(** SipHash-2-4 of the whole buffer. *)

val siphash_string : key:key -> string -> int64

val fnv1a64 : string -> int64
(** Unkeyed FNV-1a, for non-adversarial table hashing. *)
