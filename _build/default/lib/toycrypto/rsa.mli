(** Textbook RSA at toy parameters, used only to wrap session keys in
    {!Seal}.

    The algorithms (Miller–Rabin primality, modular exponentiation,
    extended-Euclid inverse) are real; the modulus is deliberately small
    (~30 bits) so that key generation and arithmetic stay in native
    ints.  DESIGN.md documents this substitution: the protocol depends
    only on the {e functional} properties (only the private key
    decrypts; public keys are shareable), not on brute-force margin. *)

type public = private { n : int; e : int }
type secret = private { n : int; d : int }

val generate : Sim.Rng.t -> public * secret
(** Generate a fresh keypair with two random ~15-bit primes and
    [e = 65537]. *)

val key_id : public -> int
(** Stable identifier for a public key (its modulus). *)

val max_chunk : public -> int
(** Largest integer encryptable under this key ([n - 1]). *)

val encrypt : public -> int -> int
(** [encrypt pk m] for [0 <= m < n].
    @raise Invalid_argument when [m] is out of range. *)

val decrypt : secret -> int -> int

val sign : secret -> bytes -> int
(** Textbook RSA signature over a SipHash digest of the message
    (hash-then-sign, digest reduced mod [n]). *)

val verify_sig : public -> bytes -> int -> bool
(** Check a {!sign}ature with the matching public key. *)

val is_probable_prime : Sim.Rng.t -> int -> bool
(** Miller–Rabin with 20 random witnesses; exposed for tests. *)

val mod_pow : int -> int -> int -> int
(** [mod_pow b e m] = b{^e} mod m, for moduli below 2{^31}; exposed for
    tests. *)
