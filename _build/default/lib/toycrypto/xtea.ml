type key = { k0 : int; k1 : int; k2 : int; k3 : int }

let mask32 = 0xFFFFFFFF

let key_of_words a b c d =
  { k0 = a land mask32; k1 = b land mask32; k2 = c land mask32; k3 = d land mask32 }

let key_of_int64s hi lo =
  let w x shift = Int64.to_int (Int64.shift_right_logical x shift) land mask32 in
  key_of_words (w hi 32) (w hi 0) (w lo 32) (w lo 0)

let random_key rng = key_of_int64s (Sim.Rng.int64 rng) (Sim.Rng.int64 rng)

let key_words { k0; k1; k2; k3 } = (k0, k1, k2, k3)

let key_word k i =
  match i land 3 with
  | 0 -> k.k0
  | 1 -> k.k1
  | 2 -> k.k2
  | _ -> k.k3

let delta = 0x9E3779B9
let rounds = 32

(* All arithmetic is on 32-bit words held in native ints. *)
let mix v = (((v lsl 4) lxor (v lsr 5)) + v) land mask32

let split_block b =
  let v0 = Int64.to_int (Int64.shift_right_logical b 32) land mask32 in
  let v1 = Int64.to_int b land mask32 in
  (v0, v1)

let join_block v0 v1 =
  Int64.logor
    (Int64.shift_left (Int64.of_int (v0 land mask32)) 32)
    (Int64.of_int (v1 land mask32))

let encrypt_block k b =
  let v0 = ref 0 and v1 = ref 0 and sum = ref 0 in
  let x, y = split_block b in
  v0 := x;
  v1 := y;
  for _ = 1 to rounds do
    v0 := (!v0 + (mix !v1 lxor ((!sum + key_word k !sum) land mask32))) land mask32;
    sum := (!sum + delta) land mask32;
    v1 := (!v1 + (mix !v0 lxor ((!sum + key_word k (!sum lsr 11)) land mask32))) land mask32
  done;
  join_block !v0 !v1

let decrypt_block k b =
  let v0 = ref 0 and v1 = ref 0 in
  let sum = ref ((delta * rounds) land mask32) in
  let x, y = split_block b in
  v0 := x;
  v1 := y;
  for _ = 1 to rounds do
    v1 := (!v1 - (mix !v0 lxor ((!sum + key_word k (!sum lsr 11)) land mask32))) land mask32;
    sum := (!sum - delta) land mask32;
    v0 := (!v0 - (mix !v1 lxor ((!sum + key_word k !sum) land mask32))) land mask32
  done;
  join_block !v0 !v1

let get_block b off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  !acc

let set_block b off v =
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xff in
    Bytes.set b (off + i) (Char.chr byte)
  done

let encrypt_cbc k ~iv plain =
  let len = Bytes.length plain in
  let pad = 8 - (len mod 8) in
  let padded = Bytes.make (len + pad) (Char.chr pad) in
  Bytes.blit plain 0 padded 0 len;
  let out = Bytes.create (len + pad) in
  let prev = ref iv in
  for i = 0 to ((len + pad) / 8) - 1 do
    let block = Int64.logxor (get_block padded (i * 8)) !prev in
    let c = encrypt_block k block in
    set_block out (i * 8) c;
    prev := c
  done;
  out

let decrypt_cbc k ~iv cipher =
  let len = Bytes.length cipher in
  if len = 0 || len mod 8 <> 0 then None
  else begin
    let out = Bytes.create len in
    let prev = ref iv in
    for i = 0 to (len / 8) - 1 do
      let c = get_block cipher (i * 8) in
      let p = Int64.logxor (decrypt_block k c) !prev in
      set_block out (i * 8) p;
      prev := c
    done;
    let pad = Char.code (Bytes.get out (len - 1)) in
    if pad < 1 || pad > 8 || pad > len then None
    else begin
      let valid = ref true in
      for i = len - pad to len - 1 do
        if Char.code (Bytes.get out i) <> pad then valid := false
      done;
      if !valid then Some (Bytes.sub out 0 (len - pad)) else None
    end
  end
