type public = { n : int; e : int }
type secret = { n : int; d : int }

(* Multiplication mod m stays exact because m < 2^31 keeps products
   below 2^62. *)
let mod_mul a b m = a * b mod m

let mod_pow b e m =
  if m <= 1 then invalid_arg "Rsa.mod_pow: modulus must be > 1";
  let rec go b e acc =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mod_mul acc b m else acc in
      go (mod_mul b b m) (e lsr 1) acc
  in
  go (b mod m) e 1

let is_probable_prime rng n =
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    (* n - 1 = d * 2^r with d odd *)
    let r = ref 0 and d = ref (n - 1) in
    while !d land 1 = 0 do
      incr r;
      d := !d lsr 1
    done;
    let witness a =
      let x = ref (mod_pow a !d n) in
      if !x = 1 || !x = n - 1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to !r - 1 do
             x := mod_mul !x !x n;
             if !x = n - 1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec trial k =
      if k = 0 then true
      else
        let a = 2 + Sim.Rng.int rng (n - 3) in
        if witness a then false else trial (k - 1)
    in
    trial 20
  end

let random_prime rng ~bits =
  let lo = 1 lsl (bits - 1) in
  let rec draw () =
    let candidate = lo lor Sim.Rng.int rng lo lor 1 in
    if is_probable_prime rng candidate then candidate else draw ()
  in
  draw ()

let rec egcd a b = if b = 0 then (a, 1, 0) else
  let g, x, y = egcd b (a mod b) in
  (g, y, x - (a / b * y))

let mod_inverse a m =
  let g, x, _ = egcd a m in
  if g <> 1 then None else Some (((x mod m) + m) mod m)

let generate rng =
  let e = 65537 in
  let rec attempt () =
    let p = random_prime rng ~bits:15 in
    let q = random_prime rng ~bits:15 in
    if p = q then attempt ()
    else begin
      let n = p * q in
      let phi = (p - 1) * (q - 1) in
      match mod_inverse e phi with
      | None -> attempt ()
      | Some d -> ({ n; e }, ({ n; d } : secret))
    end
  in
  attempt ()

let key_id (pk : public) = pk.n

let max_chunk (pk : public) = pk.n - 1

let digest_key = (0x7a69647369676e31L, 0x7a6d61696c736967L)

let digest_mod n msg =
  let h = Hash.siphash ~key:digest_key msg in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n))

let sign (sk : secret) msg = mod_pow (digest_mod sk.n msg) sk.d sk.n

let verify_sig (pk : public) msg signature =
  signature >= 0 && signature < pk.n
  && mod_pow signature pk.e pk.n = digest_mod pk.n msg

let encrypt (pk : public) m =
  if m < 0 || m >= pk.n then invalid_arg "Rsa.encrypt: message out of range";
  mod_pow m pk.e pk.n

let decrypt (sk : secret) c = mod_pow c sk.d sk.n
