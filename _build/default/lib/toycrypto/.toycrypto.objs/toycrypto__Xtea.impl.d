lib/toycrypto/xtea.ml: Bytes Char Int64 Sim
