lib/toycrypto/xtea.mli: Sim
