lib/toycrypto/seal.ml: Bytes Char Hash Int64 List Rsa Sim String Xtea
