lib/toycrypto/seal.mli: Rsa Sim
