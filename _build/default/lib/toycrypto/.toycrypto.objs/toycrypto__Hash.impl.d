lib/toycrypto/hash.ml: Bytes Char Int64 String
