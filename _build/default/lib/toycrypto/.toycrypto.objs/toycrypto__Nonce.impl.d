lib/toycrypto/nonce.ml: Hashtbl Int64 Sim
