lib/toycrypto/nonce.mli: Sim
