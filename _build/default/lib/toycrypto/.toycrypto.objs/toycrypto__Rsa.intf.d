lib/toycrypto/rsa.mli: Sim
