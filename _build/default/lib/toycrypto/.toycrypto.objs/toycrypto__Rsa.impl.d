lib/toycrypto/rsa.ml: Hash Int64 Sim
