lib/toycrypto/hash.mli:
