type t = { rng : Sim.Rng.t; mutable counter : int }

let create rng = { rng = Sim.Rng.split rng; counter = 0 }

let next t =
  t.counter <- t.counter + 1;
  let random_low = Int64.logand (Sim.Rng.int64 t.rng) 0xFFFFFFFFL in
  Int64.logor (Int64.shift_left (Int64.of_int t.counter) 32) random_low

let count t = t.counter

module Tracker = struct
  type nonrec t = (int64, unit) Hashtbl.t

  let create () = Hashtbl.create 64

  let seen t n = Hashtbl.mem t n

  let first_use t n =
    if Hashtbl.mem t n then false
    else begin
      Hashtbl.replace t n ();
      true
    end
end
