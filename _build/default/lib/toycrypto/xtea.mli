(** XTEA (Needham & Wheeler), a 64-bit block cipher with a 128-bit key,
    with CBC mode and PKCS#7 padding over byte buffers.

    This is the genuine 32-round XTEA; it provides the symmetric layer
    of {!Seal}'s hybrid encryption. *)

type key
(** A 128-bit key. *)

val key_of_words : int -> int -> int -> int -> key
(** Build a key from four 32-bit words (values are masked to 32 bits). *)

val key_of_int64s : int64 -> int64 -> key
(** Build a key from two 64-bit halves. *)

val random_key : Sim.Rng.t -> key
val key_words : key -> int * int * int * int

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64
(** Raw 64-bit block operations: [decrypt_block k (encrypt_block k b) = b]. *)

val encrypt_cbc : key -> iv:int64 -> bytes -> bytes
(** PKCS#7-pad and encrypt; output length is a multiple of 8 and
    strictly greater than the input length. *)

val decrypt_cbc : key -> iv:int64 -> bytes -> bytes option
(** Inverse of {!encrypt_cbc}; [None] if the input length or padding is
    invalid (wrong key, wrong IV, truncation or corruption). *)
