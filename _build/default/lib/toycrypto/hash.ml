type key = int64 * int64

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

(* Read 8 bytes little-endian starting at [off]; the caller guarantees
   bounds. *)
let load64_le b off =
  let byte i = Int64.of_int (Char.code (Bytes.get b (off + i))) in
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
  done;
  !acc

let siphash ~key:(k0, k1) msg =
  let v0 = ref (Int64.logxor k0 0x736f6d6570736575L) in
  let v1 = ref (Int64.logxor k1 0x646f72616e646f6dL) in
  let v2 = ref (Int64.logxor k0 0x6c7967656e657261L) in
  let v3 = ref (Int64.logxor k1 0x7465646279746573L) in
  let sipround () =
    v0 := Int64.add !v0 !v1;
    v1 := rotl !v1 13;
    v1 := Int64.logxor !v1 !v0;
    v0 := rotl !v0 32;
    v2 := Int64.add !v2 !v3;
    v3 := rotl !v3 16;
    v3 := Int64.logxor !v3 !v2;
    v0 := Int64.add !v0 !v3;
    v3 := rotl !v3 21;
    v3 := Int64.logxor !v3 !v0;
    v2 := Int64.add !v2 !v1;
    v1 := rotl !v1 17;
    v1 := Int64.logxor !v1 !v2;
    v2 := rotl !v2 32
  in
  let len = Bytes.length msg in
  let full_blocks = len / 8 in
  for i = 0 to full_blocks - 1 do
    let m = load64_le msg (i * 8) in
    v3 := Int64.logxor !v3 m;
    sipround ();
    sipround ();
    v0 := Int64.logxor !v0 m
  done;
  (* Last block: remaining bytes plus the length in the top byte. *)
  let b = ref (Int64.shift_left (Int64.of_int (len land 0xff)) 56) in
  let tail = len land 7 in
  for i = 0 to tail - 1 do
    let byte = Int64.of_int (Char.code (Bytes.get msg ((full_blocks * 8) + i))) in
    b := Int64.logor !b (Int64.shift_left byte (8 * i))
  done;
  v3 := Int64.logxor !v3 !b;
  sipround ();
  sipround ();
  v0 := Int64.logxor !v0 !b;
  v2 := Int64.logxor !v2 0xffL;
  sipround ();
  sipround ();
  sipround ();
  sipround ();
  Int64.logxor (Int64.logxor !v0 !v1) (Int64.logxor !v2 !v3)

let siphash_string ~key s = siphash ~key (Bytes.of_string s)

let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h
