(** Naive-Bayes content filter — the §2.2 "content based filtering"
    baseline (Sahami et al. style).

    Multinomial naive Bayes over tokens with Laplace smoothing.  E8
    trains it on a clean corpus and evaluates it on an adversarial one
    to reproduce the paper's claim that misspelling evades content
    filters while false positives persist. *)

type t

val create : unit -> t

val train : t -> Econ.Corpus.document -> unit
(** Incorporate one labelled document. *)

val train_all : t -> Econ.Corpus.document list -> unit

val spam_probability : t -> string list -> float
(** Posterior probability that a token list is spam; 0.5 when the
    filter has seen no training data. *)

val classify : ?threshold:float -> t -> string list -> Econ.Corpus.label
(** Label by thresholding {!spam_probability} (default threshold
    [0.9], the conservative setting real deployments use to limit
    false positives). *)

type evaluation = {
  true_positives : int;  (** Spam flagged as spam. *)
  false_positives : int;  (** Ham flagged as spam — the §2.2 disaster case. *)
  true_negatives : int;
  false_negatives : int;  (** Spam delivered. *)
}

val evaluate : ?threshold:float -> t -> Econ.Corpus.document list -> evaluation

val recall : evaluation -> float
(** Fraction of spam caught; 0 when there was no spam. *)

val false_positive_rate : evaluation -> float
(** Fraction of ham wrongly discarded; 0 when there was no ham. *)

val vocabulary_size : t -> int
