(** Hashcash-style computational challenge (Back; Dwork & Naor) — the
    §2.3 "computational cost based" baseline.

    A stamp is a nonce making [siphash(recipient ++ nonce)] start with
    [difficulty] zero bits.  Minting really performs the search (over
    SipHash), so E9's cost measurements are measured work, not an
    assumed formula. *)

type stamp = private { recipient : string; nonce : int64; difficulty : int }

val mint : Sim.Rng.t -> recipient:string -> difficulty:int -> stamp * int
(** Search for a valid stamp.  Returns the stamp and the number of hash
    evaluations performed (expected 2{^difficulty}).
    @raise Invalid_argument for difficulty outside [0, 30]. *)

val verify : stamp -> bool
(** One hash evaluation. *)

val expected_work : difficulty:int -> float
(** 2{^difficulty} hash evaluations. *)

val seconds_per_hash : float
(** Cost model for E9: ~10⁻⁷ s per hash on 2004-era hardware
    (documented constant, not measured at runtime, so experiment
    output is deterministic). *)

val cpu_seconds : hashes:int -> float
