type t = {
  banned : (string, unit) Hashtbl.t;
  trusted : (string, unit) Hashtbl.t;
}

let create () = { banned = Hashtbl.create 32; trusted = Hashtbl.create 32 }

let ban_domain t d = Hashtbl.replace t.banned (String.lowercase_ascii d) ()
let unban_domain t d = Hashtbl.remove t.banned (String.lowercase_ascii d)
let trust_sender t s = Hashtbl.replace t.trusted s ()

type verdict = Accept_whitelisted | Reject_blacklisted | Accept_unknown

let sender_domain sender =
  match String.index_opt sender '@' with
  | None -> sender
  | Some i -> String.sub sender (i + 1) (String.length sender - i - 1)

let check t ~sender =
  if Hashtbl.mem t.trusted sender then Accept_whitelisted
  else if Hashtbl.mem t.banned (String.lowercase_ascii (sender_domain sender)) then
    Reject_blacklisted
  else Accept_unknown

let banned_count t = Hashtbl.length t.banned
let trusted_count t = Hashtbl.length t.trusted
