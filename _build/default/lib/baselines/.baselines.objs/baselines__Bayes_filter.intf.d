lib/baselines/bayes_filter.mli: Econ
