lib/baselines/shred.mli: Sim
