lib/baselines/blacklist.ml: Hashtbl String
