lib/baselines/hashcash.mli: Sim
