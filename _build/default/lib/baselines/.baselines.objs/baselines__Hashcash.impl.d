lib/baselines/hashcash.ml: Int64 Sim Toycrypto
