lib/baselines/blacklist.mli:
