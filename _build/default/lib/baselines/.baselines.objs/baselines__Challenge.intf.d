lib/baselines/challenge.mli: Sim
