lib/baselines/bayes_filter.ml: Econ Float Hashtbl List Option
