lib/baselines/challenge.ml: Hashtbl
