lib/baselines/shred.ml: Sim
