type stamp = { recipient : string; nonce : int64; difficulty : int }

let stamp_key = (0x5a6b7c8d9eafb0c1L, 0x1122334455667788L)

let hash_attempt ~recipient nonce =
  Toycrypto.Hash.siphash_string ~key:stamp_key
    (recipient ^ ":" ^ Int64.to_string nonce)

let leading_zero_bits h =
  let rec count i =
    if i >= 64 then 64
    else if Int64.logand (Int64.shift_right_logical h (63 - i)) 1L = 1L then i
    else count (i + 1)
  in
  count 0

let valid ~recipient ~nonce ~difficulty =
  leading_zero_bits (hash_attempt ~recipient nonce) >= difficulty

let mint rng ~recipient ~difficulty =
  if difficulty < 0 || difficulty > 30 then
    invalid_arg "Hashcash.mint: difficulty must be in [0, 30]";
  let rec search nonce attempts =
    if valid ~recipient ~nonce ~difficulty then
      ({ recipient; nonce; difficulty }, attempts)
    else search (Int64.add nonce 1L) (attempts + 1)
  in
  search (Sim.Rng.int64 rng) 1

let verify s = valid ~recipient:s.recipient ~nonce:s.nonce ~difficulty:s.difficulty

let expected_work ~difficulty = 2. ** float_of_int difficulty

let seconds_per_hash = 1e-7

let cpu_seconds ~hashes = float_of_int hashes *. seconds_per_hash
