type params = {
  trigger_probability : float;
  charge_cents : float;
  processing_cost_cents : float;
  colluding_isps : float;
  human_seconds_per_trigger : float;
}

let default_params =
  {
    trigger_probability = 0.3;
    charge_cents = 1.;
    processing_cost_cents = 2.;
    colluding_isps = 0.;
    human_seconds_per_trigger = 3.;
  }

type t = {
  params : params;
  mutable spam_seen : int;
  mutable legit_seen : int;
  mutable triggers : int;
  mutable payments_processed : int;
  mutable spammer_paid_cents : float;
  mutable isp_processing_cost_cents : float;
  mutable human_seconds : float;
  mutable accounting_ops : int;
}

let create params =
  {
    params;
    spam_seen = 0;
    legit_seen = 0;
    triggers = 0;
    payments_processed = 0;
    spammer_paid_cents = 0.;
    isp_processing_cost_cents = 0.;
    human_seconds = 0.;
    accounting_ops = 0;
  }

let on_spam_received t rng =
  t.spam_seen <- t.spam_seen + 1;
  if Sim.Dist.bernoulli rng t.params.trigger_probability then begin
    t.triggers <- t.triggers + 1;
    t.human_seconds <- t.human_seconds +. t.params.human_seconds_per_trigger;
    (* Every payment is an individual transaction at the sender's ISP:
       look up the message, debit, log, settle. *)
    t.payments_processed <- t.payments_processed + 1;
    t.accounting_ops <- t.accounting_ops + 4;
    t.isp_processing_cost_cents <-
      t.isp_processing_cost_cents +. t.params.processing_cost_cents;
    let colluding = Sim.Dist.bernoulli rng t.params.colluding_isps in
    if not colluding then
      (* The money goes to the sender's ISP; a colluding ISP refunds
         the spammer so the spammer loses nothing. *)
      t.spammer_paid_cents <- t.spammer_paid_cents +. t.params.charge_cents
  end

let on_legit_received t = t.legit_seen <- t.legit_seen + 1

type totals = {
  spam_seen : int;
  legit_seen : int;
  triggers : int;
  payments_processed : int;
  spammer_paid_cents : float;
  receiver_earned_cents : float;
  isp_processing_cost_cents : float;
  human_seconds : float;
  accounting_ops : int;
}

let totals (t : t) =
  {
    spam_seen = t.spam_seen;
    legit_seen = t.legit_seen;
    triggers = t.triggers;
    payments_processed = t.payments_processed;
    spammer_paid_cents = t.spammer_paid_cents;
    receiver_earned_cents = 0.;
    isp_processing_cost_cents = t.isp_processing_cost_cents;
    human_seconds = t.human_seconds;
    accounting_ops = t.accounting_ops;
  }
