(** Human challenge–response model — the §2.3 "human effort based"
    baseline (Mailblocks / Active Spam Killer style).

    First contact from an unknown sender is held and a CAPTCHA-like
    challenge is returned; only humans answer.  The model tracks the
    human seconds spent answering challenges, the held legitimate mail
    from automated-but-wanted senders (newsletters, receipts — the
    approach's classic loss), and the spam that gets through. *)

type params = {
  human_seconds_per_challenge : float;  (** Default 12 s. *)
  automated_legit_fraction : float;
      (** Fraction of legitimate mail sent by software that cannot
          answer (order confirmations, lists).  Default 0.15. *)
  spammer_answers : bool;
      (** Whether spammers pay humans to solve challenges (the known
          bypass).  Default false. *)
}

val default_params : params

type t

val create : params -> t

type fate =
  | Delivered  (** Sender already verified. *)
  | Challenged_then_delivered  (** Human answered; cost incurred. *)
  | Held_forever  (** Automated legit sender never answers. *)
  | Dropped_spam

val process :
  t -> Sim.Rng.t -> sender:string -> is_spam:bool -> is_automated:bool -> fate
(** Run one message through the scheme. *)

type totals = {
  delivered : int;
  challenges_sent : int;
  human_seconds : float;
  legit_lost : int;
  spam_delivered : int;
  spam_dropped : int;
}

val totals : t -> totals
