type params = {
  human_seconds_per_challenge : float;
  automated_legit_fraction : float;
  spammer_answers : bool;
}

let default_params =
  {
    human_seconds_per_challenge = 12.;
    automated_legit_fraction = 0.15;
    spammer_answers = false;
  }

type t = {
  params : params;
  verified : (string, unit) Hashtbl.t;
  mutable delivered : int;
  mutable challenges_sent : int;
  mutable human_seconds : float;
  mutable legit_lost : int;
  mutable spam_delivered : int;
  mutable spam_dropped : int;
}

type fate = Delivered | Challenged_then_delivered | Held_forever | Dropped_spam

let create params =
  {
    params;
    verified = Hashtbl.create 64;
    delivered = 0;
    challenges_sent = 0;
    human_seconds = 0.;
    legit_lost = 0;
    spam_delivered = 0;
    spam_dropped = 0;
  }

let process t _rng ~sender ~is_spam ~is_automated =
  if Hashtbl.mem t.verified sender then begin
    t.delivered <- t.delivered + 1;
    if is_spam then t.spam_delivered <- t.spam_delivered + 1;
    Delivered
  end
  else begin
    t.challenges_sent <- t.challenges_sent + 1;
    if is_spam then
      if t.params.spammer_answers then begin
        Hashtbl.replace t.verified sender ();
        t.delivered <- t.delivered + 1;
        t.spam_delivered <- t.spam_delivered + 1;
        Challenged_then_delivered
      end
      else begin
        t.spam_dropped <- t.spam_dropped + 1;
        Dropped_spam
      end
    else if is_automated then begin
      (* The sender is a program; the challenge is never answered and
         the message is lost — the scheme's false-positive mode. *)
      t.legit_lost <- t.legit_lost + 1;
      Held_forever
    end
    else begin
      Hashtbl.replace t.verified sender ();
      t.human_seconds <- t.human_seconds +. t.params.human_seconds_per_challenge;
      t.delivered <- t.delivered + 1;
      Challenged_then_delivered
    end
  end

type totals = {
  delivered : int;
  challenges_sent : int;
  human_seconds : float;
  legit_lost : int;
  spam_delivered : int;
  spam_dropped : int;
}

let totals (t : t) =
  {
    delivered = t.delivered;
    challenges_sent = t.challenges_sent;
    human_seconds = t.human_seconds;
    legit_lost = t.legit_lost;
    spam_delivered = t.spam_delivered;
    spam_dropped = t.spam_dropped;
  }
