(** Header-based filtering — the §2.2 blacklist / whitelist baseline.

    A blacklist of sending domains (MAPS-RBL style) and a whitelist of
    sender addresses; the paper notes spammers evade blacklists by
    relaying through clean hosts and exploit whitelists by forging
    senders, so both evasions are modelled explicitly in E8. *)

type t

val create : unit -> t

val ban_domain : t -> string -> unit
val unban_domain : t -> string -> unit
val trust_sender : t -> string -> unit
(** Whitelist an exact sender address string. *)

type verdict =
  | Accept_whitelisted  (** Sender explicitly trusted — skips all checks. *)
  | Reject_blacklisted
  | Accept_unknown  (** Neither listed: passes (or goes on to a content filter). *)

val check : t -> sender:string -> verdict
(** [sender] is a full address string; the domain part is matched
    against the blacklist case-insensitively. *)

val banned_count : t -> int
val trusted_count : t -> int
