(** SHRED / Vanquish model — the §2.3 "monetary value based"
    competitors Zmail is compared against in E4.

    In SHRED the {e receiver} must take an explicit action to trigger a
    payment, the payment goes to the {e sender's ISP} (not the
    receiver), and every payment is processed individually.  The four
    §2.3 criticisms become measurable quantities here:

    + extra human actions per spam received;
    + missing incentive — the trigger probability is a parameter,
      and the receiver earns nothing either way;
    + ISP–spammer collusion refunds the charge;
    + per-payment processing cost that can exceed the penny collected. *)

type params = {
  trigger_probability : float;
      (** Chance an annoyed receiver bothers to flag a spam.  Default
          0.3 — unpaid labour. *)
  charge_cents : float;  (** Payment per triggered spam.  Default 1. *)
  processing_cost_cents : float;
      (** ISP bookkeeping cost per individually handled payment.
          Default 2 (the paper: cost "could possibly exceed the
          monetary value of the payment"). *)
  colluding_isps : float;  (** Fraction of spam sent via colluding ISPs. *)
  human_seconds_per_trigger : float;  (** Default 3 s. *)
}

val default_params : params

type t

val create : params -> t

val on_spam_received : t -> Sim.Rng.t -> unit
(** Account one spam arriving at a receiver. *)

val on_legit_received : t -> unit

type totals = {
  spam_seen : int;
  legit_seen : int;
  triggers : int;  (** Explicit receiver actions taken. *)
  payments_processed : int;  (** Individual payment transactions. *)
  spammer_paid_cents : float;  (** What spammers actually lost. *)
  receiver_earned_cents : float;  (** Always 0 — §2.3 criticism 2. *)
  isp_processing_cost_cents : float;
  human_seconds : float;
  accounting_ops : int;
      (** Ledger operations, for the E4 comparison with Zmail's two
          in-memory counter bumps per message. *)
}

val totals : t -> totals
