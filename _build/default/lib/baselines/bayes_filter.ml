type t = {
  spam_tokens : (string, int) Hashtbl.t;
  ham_tokens : (string, int) Hashtbl.t;
  mutable spam_docs : int;
  mutable ham_docs : int;
  mutable spam_token_total : int;
  mutable ham_token_total : int;
}

let create () =
  {
    spam_tokens = Hashtbl.create 256;
    ham_tokens = Hashtbl.create 256;
    spam_docs = 0;
    ham_docs = 0;
    spam_token_total = 0;
    ham_token_total = 0;
  }

let bump table token =
  Hashtbl.replace table token (1 + Option.value ~default:0 (Hashtbl.find_opt table token))

let train t (doc : Econ.Corpus.document) =
  match doc.label with
  | Econ.Corpus.Spam ->
      t.spam_docs <- t.spam_docs + 1;
      List.iter
        (fun tok ->
          bump t.spam_tokens tok;
          t.spam_token_total <- t.spam_token_total + 1)
        doc.tokens
  | Econ.Corpus.Ham ->
      t.ham_docs <- t.ham_docs + 1;
      List.iter
        (fun tok ->
          bump t.ham_tokens tok;
          t.ham_token_total <- t.ham_token_total + 1)
        doc.tokens

let train_all t docs = List.iter (train t) docs

let vocabulary_size t =
  let seen = Hashtbl.create 256 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace seen k ()) t.spam_tokens;
  Hashtbl.iter (fun k _ -> Hashtbl.replace seen k ()) t.ham_tokens;
  Hashtbl.length seen

let spam_probability t tokens =
  if t.spam_docs = 0 || t.ham_docs = 0 then 0.5
  else begin
    let vocab = float_of_int (max 1 (vocabulary_size t)) in
    let log_likelihood table total token =
      let count = Option.value ~default:0 (Hashtbl.find_opt table token) in
      log ((float_of_int count +. 1.) /. (float_of_int total +. vocab))
    in
    let docs = float_of_int (t.spam_docs + t.ham_docs) in
    let log_spam = ref (log (float_of_int t.spam_docs /. docs)) in
    let log_ham = ref (log (float_of_int t.ham_docs /. docs)) in
    List.iter
      (fun tok ->
        log_spam := !log_spam +. log_likelihood t.spam_tokens t.spam_token_total tok;
        log_ham := !log_ham +. log_likelihood t.ham_tokens t.ham_token_total tok)
      tokens;
    (* Convert the two log scores to a posterior without overflow. *)
    let m = Float.max !log_spam !log_ham in
    let es = exp (!log_spam -. m) and eh = exp (!log_ham -. m) in
    es /. (es +. eh)
  end

let classify ?(threshold = 0.9) t tokens =
  if spam_probability t tokens >= threshold then Econ.Corpus.Spam else Econ.Corpus.Ham

type evaluation = {
  true_positives : int;
  false_positives : int;
  true_negatives : int;
  false_negatives : int;
}

let evaluate ?threshold t docs =
  List.fold_left
    (fun acc (doc : Econ.Corpus.document) ->
      let predicted = classify ?threshold t doc.tokens in
      match (doc.label, predicted) with
      | Econ.Corpus.Spam, Econ.Corpus.Spam ->
          { acc with true_positives = acc.true_positives + 1 }
      | Econ.Corpus.Ham, Econ.Corpus.Spam ->
          { acc with false_positives = acc.false_positives + 1 }
      | Econ.Corpus.Ham, Econ.Corpus.Ham ->
          { acc with true_negatives = acc.true_negatives + 1 }
      | Econ.Corpus.Spam, Econ.Corpus.Ham ->
          { acc with false_negatives = acc.false_negatives + 1 })
    { true_positives = 0; false_positives = 0; true_negatives = 0; false_negatives = 0 }
    docs

let recall e =
  let spam = e.true_positives + e.false_negatives in
  if spam = 0 then 0. else float_of_int e.true_positives /. float_of_int spam

let false_positive_rate e =
  let ham = e.false_positives + e.true_negatives in
  if ham = 0 then 0. else float_of_int e.false_positives /. float_of_int ham
