type host = int

type t = (string, host) Hashtbl.t

let create () = Hashtbl.create 64

let register t ~domain host =
  Hashtbl.replace t (String.lowercase_ascii domain) host

let lookup t ~domain = Hashtbl.find_opt t (String.lowercase_ascii domain)

let domains_of t host =
  Hashtbl.fold (fun d h acc -> if h = host then d :: acc else acc) t []
  |> List.sort String.compare

let size t = Hashtbl.length t
