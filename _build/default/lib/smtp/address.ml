type t = { local : string; domain : string }

let valid_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '+' || c = '-'

let valid_part s = s <> "" && String.for_all valid_char s

let v ~local ~domain =
  if not (valid_part local) then
    invalid_arg (Printf.sprintf "Address.v: invalid local part %S" local);
  if not (valid_part domain) then
    invalid_arg (Printf.sprintf "Address.v: invalid domain %S" domain);
  { local; domain = String.lowercase_ascii domain }

let of_string s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "missing '@' in %S" s)
  | Some i ->
      let local = String.sub s 0 i in
      let domain = String.sub s (i + 1) (String.length s - i - 1) in
      if String.contains domain '@' then Error (Printf.sprintf "multiple '@' in %S" s)
      else if not (valid_part local) then Error (Printf.sprintf "invalid local part in %S" s)
      else if not (valid_part domain) then Error (Printf.sprintf "invalid domain in %S" s)
      else Ok { local; domain = String.lowercase_ascii domain }

let of_string_exn s =
  match of_string s with Ok a -> a | Error e -> invalid_arg ("Address.of_string_exn: " ^ e)

let to_string t = t.local ^ "@" ^ t.domain

let local t = t.local
let domain t = t.domain

let equal a b = String.equal a.local b.local && String.equal a.domain b.domain

let compare a b =
  match String.compare a.domain b.domain with
  | 0 -> String.compare a.local b.local
  | c -> c

let hash t = Hashtbl.hash (t.local, t.domain)

let pp ppf t = Format.pp_print_string ppf (to_string t)
