type entry = { mutable items : (float * Message.t) list (* reversed *) }

type t = (Address.t, entry) Hashtbl.t

let create () = Hashtbl.create 64

let entry t address =
  match Hashtbl.find_opt t address with
  | Some e -> e
  | None ->
      let e = { items = [] } in
      Hashtbl.replace t address e;
      e

let deliver t address ~time message =
  let e = entry t address in
  e.items <- (time, message) :: e.items

let messages_with_times t address =
  match Hashtbl.find_opt t address with
  | None -> []
  | Some e -> List.rev e.items

let messages t address = List.map snd (messages_with_times t address)

let count t address =
  match Hashtbl.find_opt t address with None -> 0 | Some e -> List.length e.items

let total t = Hashtbl.fold (fun _ e acc -> acc + List.length e.items) t 0

let users t =
  Hashtbl.fold (fun a e acc -> if e.items = [] then acc else a :: acc) t []
  |> List.sort Address.compare

let clear t address = Hashtbl.remove t address
