(** Server side of an SMTP session: the RFC 821 command state machine.

    One {!t} handles one connection.  Feed it command lines with
    {!on_line}; during a DATA block every line (dot-stuffing removed)
    accumulates until the terminating ["."].  Completed messages are
    queued and retrieved with {!take_received}.

    Recipient acceptance is delegated to the [accept] policy so the MTA
    (or a Zmail ISP, or a spam filter baseline) can refuse mailboxes. *)

type policy = {
  accept_recipient : Address.t -> (unit, string) result;
      (** Checked at RCPT TO time; [Error why] yields a 550. *)
  max_recipients : int;  (** RCPT TO beyond this count gets a 554. *)
  max_message_bytes : int;
      (** Messages larger than this (measured over the received data
          lines) are refused with 552 at the end of DATA. *)
}

val default_policy : local_domains:string list -> policy
(** Accept any mailbox in one of [local_domains]; 100 recipients max;
    1 MiB message cap. *)

type t

val create : hostname:string -> policy:policy -> t

val greeting : t -> Reply.t
(** The 220 banner; must be read (conceptually) before commands. *)

val on_line : t -> string -> Reply.t option
(** Feed one line from the client.  Returns [Some reply] for command
    lines and for the DATA terminator, [None] for intermediate data
    lines.  A [QUIT] reply (221) ends the session; further lines get
    421. *)

val received : t -> (Envelope.t * Message.t) list
(** Messages completed so far, oldest first (kept until taken). *)

val take_received : t -> (Envelope.t * Message.t) list
(** As {!received}, and clears the queue. *)

val closed : t -> bool
