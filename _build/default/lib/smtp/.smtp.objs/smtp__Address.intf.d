lib/smtp/address.mli: Format
