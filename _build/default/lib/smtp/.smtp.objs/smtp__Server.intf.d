lib/smtp/server.mli: Address Envelope Message Reply
