lib/smtp/mailbox.mli: Address Message
