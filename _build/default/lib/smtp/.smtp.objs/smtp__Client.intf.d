lib/smtp/client.mli: Address Envelope Message Reply Server
