lib/smtp/reply.ml: Format Printf String
