lib/smtp/command.mli: Address Format
