lib/smtp/dns.ml: Hashtbl List String
