lib/smtp/client.ml: Address Command Envelope List Message Printf Reply Result Server String
