lib/smtp/dns.mli:
