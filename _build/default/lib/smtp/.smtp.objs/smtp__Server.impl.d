lib/smtp/server.ml: Address Command Envelope List Message Printf Reply String
