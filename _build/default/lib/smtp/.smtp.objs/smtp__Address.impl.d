lib/smtp/address.ml: Format Hashtbl Printf String
