lib/smtp/mta.mli: Address Dns Envelope Mailbox Message Sim
