lib/smtp/reply.mli: Format
