lib/smtp/message.mli: Address Format
