lib/smtp/envelope.ml: Address Format List String
