lib/smtp/mta.ml: Address Client Dns Envelope List Logs Mailbox Message Printf Reply Server Sim String
