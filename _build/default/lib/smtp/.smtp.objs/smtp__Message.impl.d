lib/smtp/message.ml: Address Format List Option Printf Result String
