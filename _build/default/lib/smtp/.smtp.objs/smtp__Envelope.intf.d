lib/smtp/envelope.mli: Address Format
