lib/smtp/mailbox.ml: Address Hashtbl List Message
