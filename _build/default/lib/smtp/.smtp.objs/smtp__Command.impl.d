lib/smtp/command.ml: Address Format Printf Result String
