type t = { code : int; text : string }

let v code text =
  if code < 200 || code > 599 then
    invalid_arg (Printf.sprintf "Reply.v: invalid SMTP code %d" code);
  { code; text }

let service_ready ~hostname = v 220 (hostname ^ " Service ready")
let closing ~hostname = v 221 (hostname ^ " Service closing transmission channel")
let completed = v 250 "OK"
let completed_text text = v 250 text
let start_mail_input = v 354 "Start mail input; end with <CRLF>.<CRLF>"
let service_unavailable = v 421 "Service not available"
let mailbox_busy = v 450 "Requested mail action not taken: mailbox busy"
let local_error = v 451 "Requested action aborted: local error in processing"
let syntax_error = v 500 "Syntax error, command unrecognized"
let bad_sequence = v 503 "Bad sequence of commands"
let mailbox_unavailable who = v 550 ("Requested action not taken: mailbox unavailable: " ^ who)
let transaction_failed why = v 554 ("Transaction failed: " ^ why)

let is_positive t = t.code >= 200 && t.code < 400
let is_transient_failure t = t.code >= 400 && t.code < 500
let is_permanent_failure t = t.code >= 500

let to_line t = Printf.sprintf "%d %s" t.code t.text

let of_line line =
  if String.length line < 3 then Error (Printf.sprintf "reply too short: %S" line)
  else
    match int_of_string_opt (String.sub line 0 3) with
    | None -> Error (Printf.sprintf "missing reply code: %S" line)
    | Some code when code < 200 || code > 599 ->
        Error (Printf.sprintf "invalid reply code %d" code)
    | Some code ->
        let text =
          if String.length line > 4 then String.sub line 4 (String.length line - 4)
          else ""
        in
        Ok { code; text }

let equal a b = a.code = b.code && String.equal a.text b.text

let pp ppf t = Format.pp_print_string ppf (to_line t)
