(** Email addresses of the form [local@domain].

    Parsing is deliberately stricter than RFC 5321 (no quoting, no
    source routes): the simulator only ever generates the simple form,
    and strictness catches generator bugs early. *)

type t = private { local : string; domain : string }

val v : local:string -> domain:string -> t
(** Build an address.
    @raise Invalid_argument if either part is empty or contains
    characters outside [A-Za-z0-9._+-]. *)

val of_string : string -> (t, string) result
(** Parse ["local@domain"]. *)

val of_string_exn : string -> t

val to_string : t -> string

val local : t -> string
val domain : t -> string

val equal : t -> t -> bool
(** Case-insensitive on the domain, case-sensitive on the local part
    (the common conservative interpretation). *)

val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
