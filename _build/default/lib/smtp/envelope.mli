(** The SMTP envelope: the sender and recipients named in the MAIL
    FROM / RCPT TO dialogue, independent of the message headers. *)

type t = private { sender : Address.t; recipients : Address.t list }

val v : sender:Address.t -> recipients:Address.t list -> t
(** @raise Invalid_argument on an empty or duplicated recipient list. *)

val sender : t -> Address.t
val recipients : t -> Address.t list

val recipients_in : t -> domain:string -> Address.t list
(** Recipients whose address is in [domain]. *)

val domains : t -> string list
(** Distinct recipient domains, in first-appearance order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
