type transport = {
  greeting : unit -> Reply.t;
  exchange : string -> Reply.t option;
}

let of_server server =
  {
    greeting = (fun () -> Server.greeting server);
    exchange = (fun line -> Server.on_line server line);
  }

type outcome = {
  accepted : Address.t list;
  rejected : (Address.t * Reply.t) list;
}

type failure =
  | Connection_refused of Reply.t
  | Protocol_error of { at : string; reply : Reply.t }
  | All_recipients_rejected of (Address.t * Reply.t) list

let failure_to_string = function
  | Connection_refused r -> "connection refused: " ^ Reply.to_line r
  | Protocol_error { at; reply } ->
      Printf.sprintf "unexpected reply to %s: %s" at (Reply.to_line reply)
  | All_recipients_rejected rs ->
      Printf.sprintf "all %d recipients rejected" (List.length rs)

let stuff line =
  if String.length line >= 1 && line.[0] = '.' then "." ^ line else line

let command transport cmd =
  let line = Command.to_line cmd in
  match transport.exchange line with
  | Some reply -> Ok (line, reply)
  | None -> Error (Protocol_error { at = line; reply = Reply.v 500 "no reply" })

let expect_positive transport cmd =
  match command transport cmd with
  | Error _ as e -> e
  | Ok (line, reply) ->
      if Reply.is_positive reply then Ok reply
      else Error (Protocol_error { at = line; reply })

let deliver transport ~hostname envelope message =
  let banner = transport.greeting () in
  if banner.Reply.code <> 220 then Error (Connection_refused banner)
  else
    let ( let* ) = Result.bind in
    let* _ = expect_positive transport (Command.Helo hostname) in
    let* _ = expect_positive transport (Command.Mail_from (Envelope.sender envelope)) in
    let accepted, rejected =
      List.fold_left
        (fun (acc, rej) rcpt ->
          match command transport (Command.Rcpt_to rcpt) with
          | Ok (_, reply) when Reply.is_positive reply -> (acc @ [ rcpt ], rej)
          | Ok (_, reply) -> (acc, rej @ [ (rcpt, reply) ])
          | Error _ -> (acc, rej @ [ (rcpt, Reply.v 500 "no reply") ]))
        ([], [])
        (Envelope.recipients envelope)
    in
    if accepted = [] then begin
      (* Close the session politely before reporting failure. *)
      ignore (command transport Command.Quit);
      Error (All_recipients_rejected rejected)
    end
    else
      let* data_reply = expect_positive transport Command.Data in
      if data_reply.Reply.code <> 354 then
        Error (Protocol_error { at = "DATA"; reply = data_reply })
      else begin
        let lines = Message.to_lines message in
        List.iter (fun l -> ignore (transport.exchange (stuff l))) lines;
        match transport.exchange "." with
        | Some reply when Reply.is_positive reply ->
            ignore (command transport Command.Quit);
            Ok { accepted; rejected }
        | Some reply -> Error (Protocol_error { at = "."; reply })
        | None -> Error (Protocol_error { at = "."; reply = Reply.v 500 "no reply" })
      end
