(** Per-user mail stores for one MTA. *)

type t

val create : unit -> t

val deliver : t -> Address.t -> time:float -> Message.t -> unit
(** Append a message to the addressee's inbox (created on demand). *)

val messages : t -> Address.t -> Message.t list
(** Inbox contents, oldest first; empty for unknown users. *)

val messages_with_times : t -> Address.t -> (float * Message.t) list

val count : t -> Address.t -> int

val total : t -> int
(** Messages across all inboxes. *)

val users : t -> Address.t list
(** Addresses that have received at least one message, sorted. *)

val clear : t -> Address.t -> unit
