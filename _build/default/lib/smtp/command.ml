type t =
  | Helo of string
  | Mail_from of Address.t
  | Rcpt_to of Address.t
  | Data
  | Rset
  | Noop
  | Quit
  | Vrfy of string

let to_line = function
  | Helo h -> "HELO " ^ h
  | Mail_from a -> Printf.sprintf "MAIL FROM:<%s>" (Address.to_string a)
  | Rcpt_to a -> Printf.sprintf "RCPT TO:<%s>" (Address.to_string a)
  | Data -> "DATA"
  | Rset -> "RSET"
  | Noop -> "NOOP"
  | Quit -> "QUIT"
  | Vrfy who -> "VRFY " ^ who

let angle_path s =
  (* Accept "<addr>" or bare "addr". *)
  let s = String.trim s in
  let stripped =
    if String.length s >= 2 && s.[0] = '<' && s.[String.length s - 1] = '>' then
      String.sub s 1 (String.length s - 2)
    else s
  in
  Address.of_string stripped

let of_line line =
  let line = String.trim line in
  let upper = String.uppercase_ascii line in
  let starts prefix = String.length upper >= String.length prefix
                      && String.sub upper 0 (String.length prefix) = prefix in
  let rest_after prefix = String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)) in
  if upper = "DATA" then Ok Data
  else if upper = "RSET" then Ok Rset
  else if upper = "NOOP" then Ok Noop
  else if upper = "QUIT" then Ok Quit
  else if starts "HELO " then
    let h = rest_after "HELO " in
    if h = "" then Error "HELO requires a hostname" else Ok (Helo h)
  else if starts "EHLO " then
    (* Treated as HELO: the simulator offers no extensions. *)
    let h = rest_after "EHLO " in
    if h = "" then Error "EHLO requires a hostname" else Ok (Helo h)
  else if starts "MAIL FROM:" then
    Result.map (fun a -> Mail_from a) (angle_path (rest_after "MAIL FROM:"))
  else if starts "RCPT TO:" then
    Result.map (fun a -> Rcpt_to a) (angle_path (rest_after "RCPT TO:"))
  else if starts "VRFY " then Ok (Vrfy (rest_after "VRFY "))
  else Error (Printf.sprintf "unrecognized command: %S" line)

let equal a b =
  match (a, b) with
  | Helo x, Helo y | Vrfy x, Vrfy y -> String.equal x y
  | Mail_from x, Mail_from y | Rcpt_to x, Rcpt_to y -> Address.equal x y
  | Data, Data | Rset, Rset | Noop, Noop | Quit, Quit -> true
  | (Helo _ | Mail_from _ | Rcpt_to _ | Data | Rset | Noop | Quit | Vrfy _), _ ->
      false

let pp ppf t = Format.pp_print_string ppf (to_line t)
