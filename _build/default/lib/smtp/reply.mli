(** SMTP reply lines (RFC 821 §4.2): a three-digit code and text. *)

type t = { code : int; text : string }

val v : int -> string -> t
(** @raise Invalid_argument unless the code is a valid three-digit SMTP
    code (first digit 2–5). *)

(** Common replies, named after their RFC 821 meanings. *)

val service_ready : hostname:string -> t (* 220 *)
val closing : hostname:string -> t (* 221 *)
val completed : t (* 250 OK *)
val completed_text : string -> t (* 250 with custom text *)
val start_mail_input : t (* 354 *)
val service_unavailable : t (* 421 *)
val mailbox_busy : t (* 450 *)
val local_error : t (* 451 *)
val syntax_error : t (* 500 *)
val bad_sequence : t (* 503 *)
val mailbox_unavailable : string -> t (* 550 *)
val transaction_failed : string -> t (* 554 *)

val is_positive : t -> bool
(** 2xx or 3xx. *)

val is_transient_failure : t -> bool
(** 4xx — retrying later may succeed. *)

val is_permanent_failure : t -> bool
(** 5xx. *)

val to_line : t -> string
val of_line : string -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
