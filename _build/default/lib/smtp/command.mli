(** SMTP commands (RFC 821 §4.1) and their wire form. *)

type t =
  | Helo of string  (** HELO <hostname> *)
  | Mail_from of Address.t  (** MAIL FROM:<address> *)
  | Rcpt_to of Address.t  (** RCPT TO:<address> *)
  | Data
  | Rset
  | Noop
  | Quit
  | Vrfy of string

val to_line : t -> string
val of_line : string -> (t, string) result
(** Parse a command line; verbs are case-insensitive, as RFC 821
    requires. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
