type t = { sender : Address.t; recipients : Address.t list }

let v ~sender ~recipients =
  if recipients = [] then invalid_arg "Envelope.v: no recipients";
  let rec dup_free = function
    | [] -> true
    | r :: rest -> (not (List.exists (Address.equal r) rest)) && dup_free rest
  in
  if not (dup_free recipients) then invalid_arg "Envelope.v: duplicate recipient";
  { sender; recipients }

let sender t = t.sender
let recipients t = t.recipients

let recipients_in t ~domain =
  let domain = String.lowercase_ascii domain in
  List.filter (fun r -> Address.domain r = domain) t.recipients

let domains t =
  List.fold_left
    (fun acc r ->
      let d = Address.domain r in
      if List.mem d acc then acc else acc @ [ d ])
    [] t.recipients

let equal a b =
  Address.equal a.sender b.sender
  && List.length a.recipients = List.length b.recipients
  && List.for_all2 Address.equal a.recipients b.recipients

let pp ppf t =
  Format.fprintf ppf "%a -> [%s]" Address.pp t.sender
    (String.concat "; " (List.map Address.to_string t.recipients))
