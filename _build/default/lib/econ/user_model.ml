type profile = {
  name : string;
  daily_sends : float;
  reply_probability : float;
  contacts : int;
  weight : float;
}

let light =
  { name = "light"; daily_sends = 2.; reply_probability = 0.3; contacts = 15; weight = 0.4 }

let average =
  { name = "average"; daily_sends = 8.; reply_probability = 0.4; contacts = 40; weight = 0.4 }

let heavy =
  { name = "heavy"; daily_sends = 25.; reply_probability = 0.5; contacts = 120; weight = 0.15 }

let broadcaster =
  { name = "broadcaster"; daily_sends = 60.; reply_probability = 0.1; contacts = 300; weight = 0.05 }

let standard_mix = [ light; average; heavy; broadcaster ]

let assign rng mix n =
  if mix = [] then invalid_arg "User_model.assign: empty mix";
  let weights = Array.of_list (List.map (fun p -> p.weight) mix) in
  let profiles = Array.of_list mix in
  let sample = Sim.Dist.categorical ~weights in
  Array.init n (fun _ -> profiles.(sample rng))

let inter_send_delay rng profile =
  if profile.daily_sends <= 0. then infinity
  else Sim.Dist.exponential rng ~rate:(profile.daily_sends /. 86400.)

(* A user's address book is the [contacts]-sized pseudo-random subset
   of the universe determined by mixing the user's index; Zipf rank
   weighting concentrates traffic on the first few contacts. *)
let pick_correspondent rng ~self ~universe profile =
  if universe < 2 then invalid_arg "User_model.pick_correspondent: universe too small";
  let book_size = min profile.contacts (universe - 1) in
  let book_entry rank =
    (* Deterministic per-(self, rank) contact, skipping self. *)
    let mix = (self * 2_654_435_761) + (rank * 40_503) in
    let candidate = abs (Hashtbl.hash mix) mod universe in
    if candidate = self then (candidate + 1) mod universe else candidate
  in
  let zipf = Sim.Dist.zipf ~n:book_size ~s:1.1 in
  book_entry (zipf rng)
