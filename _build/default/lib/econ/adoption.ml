type params = {
  n_isps : int;
  users_per_isp : int;
  initial_compliant : int;
  spam_per_user_day : float;
  compliant_spam_suppression : float;
  threshold_mean : float;
  threshold_sigma : float;
  user_switch_rate : float;
  days : int;
}

let default_params =
  {
    n_isps = 20;
    users_per_isp = 5_000;
    initial_compliant = 2;
    spam_per_user_day = 15.;
    compliant_spam_suppression = 0.9;
    threshold_mean = 0.35;
    threshold_sigma = 0.15;
    user_switch_rate = 0.01;
    days = 365;
  }

type day_point = {
  day : int;
  compliant_isps : int;
  compliant_user_share : float;
  avg_spam_noncompliant : float;
  avg_spam_compliant : float;
}

type isp_state = {
  mutable compliant : bool;
  mutable users : float;
  threshold : float;
}

let simulate rng p =
  if p.initial_compliant < 1 || p.initial_compliant > p.n_isps then
    invalid_arg "Adoption.simulate: initial_compliant out of range";
  let isps =
    Array.init p.n_isps (fun i ->
        {
          compliant = i < p.initial_compliant;
          users = float_of_int p.users_per_isp;
          threshold =
            Float.max 0.02
              (Sim.Dist.normal rng ~mean:p.threshold_mean ~stddev:p.threshold_sigma);
        })
  in
  let total_users = float_of_int (p.n_isps * p.users_per_isp) in
  let spam_compliant () = p.spam_per_user_day *. (1. -. p.compliant_spam_suppression) in
  let observe day =
    let compliant_isps = Array.fold_left (fun a i -> if i.compliant then a + 1 else a) 0 isps in
    let compliant_users =
      Array.fold_left (fun a i -> if i.compliant then a +. i.users else a) 0. isps
    in
    {
      day;
      compliant_isps;
      compliant_user_share = compliant_users /. total_users;
      avg_spam_noncompliant = p.spam_per_user_day;
      avg_spam_compliant = spam_compliant ();
    }
  in
  let points = ref [ observe 0 ] in
  for day = 1 to p.days do
    let compliant_share =
      Array.fold_left (fun a i -> if i.compliant then a +. 1. else a) 0. isps
      /. float_of_int p.n_isps
    in
    (* Users at non-compliant ISPs drift toward compliant ones.  The
       switch pressure grows with the spam burden they carry and with
       the availability of compliant alternatives. *)
    let spam_burden = p.spam_per_user_day -. spam_compliant () in
    let switch_prob =
      Float.min 0.5 (p.user_switch_rate *. spam_burden /. 10. *. compliant_share)
    in
    let total_switchers = ref 0. in
    Array.iter
      (fun isp ->
        if not isp.compliant then begin
          let leaving = isp.users *. switch_prob in
          isp.users <- isp.users -. leaving;
          total_switchers := !total_switchers +. leaving
        end)
      isps;
    let compliant_count =
      Array.fold_left (fun a i -> if i.compliant then a + 1 else a) 0 isps
    in
    if compliant_count > 0 && !total_switchers > 0. then begin
      let gain = !total_switchers /. float_of_int compliant_count in
      Array.iter (fun isp -> if isp.compliant then isp.users <- isp.users +. gain) isps
    end;
    (* An ISP converts when the pressure it feels exceeds its private
       threshold.  Pressure combines peer adoption with its own user
       loss so far. *)
    Array.iter
      (fun isp ->
        if not isp.compliant then begin
          let user_loss = 1. -. (isp.users /. float_of_int p.users_per_isp) in
          let pressure = (0.5 *. compliant_share) +. (0.5 *. user_loss) in
          let jitter = Sim.Dist.normal rng ~mean:0. ~stddev:0.01 in
          if pressure +. jitter > isp.threshold then isp.compliant <- true
        end)
      isps;
    points := observe day :: !points
  done;
  List.rev !points

let days_to_majority ~total_isps points =
  List.find_map
    (fun p -> if 2 * p.compliant_isps > total_isps then Some p.day else None)
    points
