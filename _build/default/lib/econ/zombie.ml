type params = {
  users : int;
  initially_infected : int;
  contacts_per_user : int;
  virus_sends_per_day : int;
  infection_probability : float;
  daily_limit : int;
  legitimate_sends_per_day : int;
  disinfect_after_warning_days : int;
  days : int;
}

let default_params =
  {
    users = 1_000;
    initially_infected = 3;
    contacts_per_user = 30;
    virus_sends_per_day = 2000;
    infection_probability = 0.02;
    daily_limit = 100;
    legitimate_sends_per_day = 10;
    disinfect_after_warning_days = 2;
    days = 30;
  }

type day_point = {
  day : int;
  infected : int;
  detected : int;
  virus_sent : int;
  virus_blocked : int;
  legit_blocked : int;
}

type outcome = {
  series : day_point list;
  peak_infected : int;
  total_virus_delivered : int;
  max_user_liability_epennies : int;
  mean_detection_day : float;
}

type machine = {
  mutable infected : bool;
  mutable warned_on : int option;  (** Day the limit warning fired. *)
  mutable immune : bool;  (** Cleaned machines are patched. *)
}

let simulate rng p =
  if p.initially_infected > p.users then
    invalid_arg "Zombie.simulate: more infections than users";
  let machines =
    Array.init p.users (fun i ->
        { infected = i < p.initially_infected; warned_on = None; immune = false })
  in
  let detection_days = ref [] in
  let series = ref [] in
  let peak = ref p.initially_infected in
  let delivered_total = ref 0 in
  let max_liability = ref 0 in
  for day = 1 to p.days do
    (* Cleanup first: owners warned long enough ago disinfect. *)
    Array.iter
      (fun m ->
        match m.warned_on with
        | Some d when m.infected && day - d >= p.disinfect_after_warning_days ->
            m.infected <- false;
            m.immune <- true
        | Some _ | None -> ())
      machines;
    let virus_sent = ref 0 and virus_blocked = ref 0 and legit_blocked = ref 0 in
    let newly_infected = ref [] in
    Array.iteri
      (fun i m ->
        if m.infected then begin
          (* The virus drains the budget before the owner's own mail:
             mass mailers fire early and fast. *)
          let attempts = p.virus_sends_per_day in
          let sent = min attempts p.daily_limit in
          let blocked = attempts - sent in
          virus_sent := !virus_sent + sent;
          virus_blocked := !virus_blocked + blocked;
          delivered_total := !delivered_total + sent;
          max_liability := max !max_liability sent;
          let remaining_budget = max 0 (p.daily_limit - sent) in
          let legit_stopped = max 0 (p.legitimate_sends_per_day - remaining_budget) in
          legit_blocked := !legit_blocked + legit_stopped;
          if blocked > 0 && m.warned_on = None then begin
            m.warned_on <- Some day;
            detection_days := float_of_int day :: !detection_days
          end;
          (* Each delivered virus message may infect the recipient. *)
          for _ = 1 to sent do
            let target = Sim.Rng.int rng (min p.contacts_per_user p.users) in
            (* Contacts cluster near the sender's index: a cheap proxy
               for social locality. *)
            let victim = (i + 1 + target) mod p.users in
            let vm = machines.(victim) in
            if
              (not vm.infected) && (not vm.immune)
              && Sim.Dist.bernoulli rng p.infection_probability
            then newly_infected := victim :: !newly_infected
          done
        end)
      machines;
    List.iter (fun v -> machines.(v).infected <- true) !newly_infected;
    let infected_now =
      Array.fold_left (fun a m -> if m.infected then a + 1 else a) 0 machines
    in
    let detected_now =
      Array.fold_left (fun a m -> if m.warned_on <> None then a + 1 else a) 0 machines
    in
    peak := max !peak infected_now;
    series :=
      {
        day;
        infected = infected_now;
        detected = detected_now;
        virus_sent = !virus_sent;
        virus_blocked = !virus_blocked;
        legit_blocked = !legit_blocked;
      }
      :: !series
  done;
  let mean_detection_day =
    match !detection_days with
    | [] -> nan
    | ds -> List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds)
  in
  {
    series = List.rev !series;
    peak_infected = !peak;
    total_virus_delivered = !delivered_total;
    max_user_liability_epennies = !max_liability;
    mean_detection_day;
  }
