(** Behavioural profiles for normal email users.

    §1.2 claims users who receive about as much as they send are
    net-zero under Zmail.  The profiles here drive the timed simulation
    (E2): each user sends at a Poisson rate, picks correspondents
    Zipf-style from an address book, and replies to a fraction of what
    it receives — which is what makes flows roughly balance without
    being artificially equal. *)

type profile = {
  name : string;
  daily_sends : float;  (** Mean fresh (non-reply) messages per day. *)
  reply_probability : float;  (** Probability of answering a received message. *)
  contacts : int;  (** Address-book size. *)
  weight : float;  (** Share of this profile in the population. *)
}

val light : profile
val average : profile
val heavy : profile
val broadcaster : profile
(** A newsletter-ish user who sends far more than they receive: the
    §1.2 case of someone who must top up (or be subscribed to). *)

val standard_mix : profile list
(** [light; average; heavy; broadcaster] with weights summing to 1. *)

val assign : Sim.Rng.t -> profile list -> int -> profile array
(** [assign rng mix n] draws a profile for each of [n] users according
    to the mix weights. *)

val inter_send_delay : Sim.Rng.t -> profile -> float
(** Exponential inter-arrival time (seconds) between fresh sends. *)

val pick_correspondent :
  Sim.Rng.t -> self:int -> universe:int -> profile -> int
(** Choose a recipient index in [\[0, universe)], never [self],
    Zipf-weighted toward a small circle of frequent contacts (the
    user's "address book" is a deterministic pseudo-random subset keyed
    by the user's own index, so repeated calls favour the same
    contacts). *)
