type point = {
  price : float;
  viable_campaigns : int;
  total_campaigns : int;
  monthly_volume : int;
  volume_fraction : float;
  break_even_rate : float;
  spammer_cost_multiplier : float;
}

let epenny_price = 0.01

let median values =
  match List.sort compare values with
  | [] -> invalid_arg "Market.median: empty list"
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let volume_at campaigns ~price =
  List.fold_left
    (fun acc c -> if Campaign.viable c ~price then acc + Campaign.monthly_volume c else acc)
    0 campaigns

let evaluate campaigns ~price =
  let total_campaigns = List.length campaigns in
  if total_campaigns = 0 then invalid_arg "Market.evaluate: no campaigns";
  let viable_campaigns =
    List.length (List.filter (fun c -> Campaign.viable c ~price) campaigns)
  in
  let monthly_volume = volume_at campaigns ~price in
  let base_volume = volume_at campaigns ~price:0. in
  let median_value =
    median (List.map (fun c -> c.Campaign.value_per_response) campaigns)
  in
  let median_infra =
    median (List.map (fun c -> c.Campaign.infra_cost_per_message) campaigns)
  in
  {
    price;
    viable_campaigns;
    total_campaigns;
    monthly_volume;
    volume_fraction =
      (if base_volume = 0 then 0.
       else float_of_int monthly_volume /. float_of_int base_volume);
    break_even_rate =
      Campaign.break_even_response_rate ~value_per_response:median_value
        ~infra:median_infra ~price;
    spammer_cost_multiplier =
      (if median_infra = 0. then infinity else (median_infra +. price) /. median_infra);
  }

let sweep campaigns ~prices = List.map (fun price -> evaluate campaigns ~price) prices
