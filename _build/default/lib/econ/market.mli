(** Market equilibrium under per-message pricing (experiment E1).

    For a population of campaigns and a price sweep, compute which
    campaigns stay in business and how much spam volume survives —
    the quantitative form of §1.2's market-forces claim. *)

type point = {
  price : float;  (** Dollars per message. *)
  viable_campaigns : int;
  total_campaigns : int;
  monthly_volume : int;  (** Messages/month from viable campaigns. *)
  volume_fraction : float;  (** Relative to the price-zero volume. *)
  break_even_rate : float;
      (** Response rate needed to break even at the population's median
          value per response. *)
  spammer_cost_multiplier : float;
      (** (infra + price) / infra — the paper's "two orders of
          magnitude" factor. *)
}

val evaluate : Campaign.t list -> price:float -> point
val sweep : Campaign.t list -> prices:float list -> point list

val epenny_price : float
(** $0.01, the paper's nominal e-penny. *)

val median : float list -> float
(** Median of a non-empty list (exposed for tests).
    @raise Invalid_argument on an empty list. *)
