(** Incremental-deployment dynamics (experiment E5).

    §1.3/§5: Zmail "can be bootstrapped with as few as two compliant
    ISPs", and good experience at compliant ISPs attracts users, which
    pressures more ISPs to comply — a positive-feedback loop.  This is
    the classic threshold-adoption model (Granovetter): each ISP has a
    private conversion threshold; it converts once the pressure it
    feels (its users' spam burden weighted by how much of the network
    is already compliant) exceeds that threshold. *)

type params = {
  n_isps : int;
  users_per_isp : int;
  initial_compliant : int;  (** The paper's bootstrap: 2. *)
  spam_per_user_day : float;
      (** Spam a user at a non-compliant ISP receives daily. *)
  compliant_spam_suppression : float;
      (** Fraction of spam removed for users of compliant ISPs (E1's
          market effect, taken as an input here). *)
  threshold_mean : float;  (** Mean conversion threshold in [0, 1]. *)
  threshold_sigma : float;
  user_switch_rate : float;
      (** Daily probability scale that an annoyed user moves to a
          compliant ISP. *)
  days : int;
}

val default_params : params

type day_point = {
  day : int;
  compliant_isps : int;
  compliant_user_share : float;
      (** Fraction of all users served by compliant ISPs (including
          switchers). *)
  avg_spam_noncompliant : float;  (** Spam/user/day at hold-out ISPs. *)
  avg_spam_compliant : float;
}

val simulate : Sim.Rng.t -> params -> day_point list
(** One trajectory, one point per simulated day (day 0 = initial
    state included). *)

val days_to_majority : total_isps:int -> day_point list -> int option
(** First day on which more than half the ISPs are compliant. *)
