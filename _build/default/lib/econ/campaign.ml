type t = {
  id : int;
  list_size : int;
  blasts_per_month : int;
  response_rate : float;
  value_per_response : float;
  infra_cost_per_message : float;
}

let v ~id ~list_size ~blasts_per_month ~response_rate ~value_per_response
    ~infra_cost_per_message =
  if list_size <= 0 then invalid_arg "Campaign.v: list_size must be positive";
  if blasts_per_month <= 0 then invalid_arg "Campaign.v: blasts_per_month must be positive";
  if response_rate < 0. || response_rate > 1. then
    invalid_arg "Campaign.v: response_rate must be in [0, 1]";
  if value_per_response < 0. then invalid_arg "Campaign.v: negative value_per_response";
  if infra_cost_per_message < 0. then invalid_arg "Campaign.v: negative infra cost";
  { id; list_size; blasts_per_month; response_rate; value_per_response;
    infra_cost_per_message }

let profit_per_message t ~price =
  (t.response_rate *. t.value_per_response) -. t.infra_cost_per_message -. price

let viable t ~price = profit_per_message t ~price > 0.

let monthly_volume t = t.list_size * t.blasts_per_month

let monthly_profit t ~price =
  float_of_int (monthly_volume t) *. profit_per_message t ~price

let break_even_response_rate ~value_per_response ~infra ~price =
  if value_per_response <= 0. then infinity else (infra +. price) /. value_per_response

type population_params = {
  n : int;
  response_rate_mu : float;
  response_rate_sigma : float;
  value_mu : float;
  value_sigma : float;
  list_size_mean : float;
  infra_cost : float;
}

let default_population =
  {
    n = 200;
    (* ln 1e-4 ~ -9.21: median campaign converts 0.01% of recipients,
       in line with early-2000s bulk-mail estimates. *)
    response_rate_mu = -9.21;
    response_rate_sigma = 0.8;
    (* ln 15 ~ 2.7: median ~$15 of revenue per response. *)
    value_mu = 2.7;
    value_sigma = 0.6;
    list_size_mean = 100_000.;
    infra_cost = 1e-4;
  }

let population rng p =
  List.init p.n (fun id ->
      let response_rate =
        Float.min 1.0
          (Sim.Dist.lognormal rng ~mu:p.response_rate_mu ~sigma:p.response_rate_sigma)
      in
      let value_per_response =
        Sim.Dist.lognormal rng ~mu:p.value_mu ~sigma:p.value_sigma
      in
      let list_size =
        (* Heavy-tailed list sizes: a few very large operations.  Shape
           2.2 keeps the variance finite so volume sweeps are stable. *)
        let shape = 2.2 in
        let scale = p.list_size_mean *. (shape -. 1.) /. shape in
        int_of_float (Sim.Dist.pareto rng ~scale ~shape)
      in
      let blasts_per_month = Sim.Dist.uniform_int rng ~lo:1 ~hi:8 in
      v ~id ~list_size:(max 1 list_size) ~blasts_per_month ~response_rate
        ~value_per_response ~infra_cost_per_message:p.infra_cost)

let pp ppf t =
  Format.fprintf ppf "campaign#%d list=%d r=%.5f v=$%.2f" t.id t.list_size
    t.response_rate t.value_per_response
