lib/econ/market.ml: Campaign List
