lib/econ/zombie.ml: Array List Sim
