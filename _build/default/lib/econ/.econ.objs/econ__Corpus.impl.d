lib/econ/corpus.ml: Array Bytes List Sim String
