lib/econ/campaign.ml: Float Format List Sim
