lib/econ/corpus.mli: Sim
