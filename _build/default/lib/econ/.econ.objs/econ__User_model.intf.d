lib/econ/user_model.mli: Sim
