lib/econ/market.mli: Campaign
