lib/econ/adoption.ml: Array Float List Sim
