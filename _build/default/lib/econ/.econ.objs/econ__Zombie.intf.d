lib/econ/zombie.mli: Sim
