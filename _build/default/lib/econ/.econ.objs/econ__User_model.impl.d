lib/econ/user_model.ml: Array Hashtbl List Sim
