lib/econ/adoption.mli: Sim
