lib/econ/campaign.mli: Format Sim
