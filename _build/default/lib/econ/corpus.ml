type label = Ham | Spam

type document = { label : label; tokens : string list }

type params = {
  n : int;
  spam_fraction : float;
  tokens_per_message : int;
  misspell_probability : float;
  newsletter_fraction : float;
}

let default_params =
  {
    n = 5_000;
    spam_fraction = 0.6;
    tokens_per_message = 40;
    misspell_probability = 0.;
    newsletter_fraction = 0.05;
  }

let ham_vocabulary =
  [|
    "meeting"; "schedule"; "report"; "project"; "deadline"; "budget"; "review";
    "lunch"; "attached"; "draft"; "minutes"; "agenda"; "thanks"; "regards";
    "question"; "answer"; "team"; "family"; "weekend"; "photos"; "dinner";
    "homework"; "flight"; "conference"; "paper"; "submission"; "committee";
    "interview"; "resume"; "contract"; "invoice"; "payment"; "semester";
  |]

let spam_vocabulary =
  [|
    "viagra"; "free"; "winner"; "millions"; "lottery"; "enlarge"; "pills";
    "cheap"; "mortgage"; "refinance"; "casino"; "prize"; "guarantee";
    "unsubscribe"; "offer"; "limited"; "act"; "now"; "cash"; "bonus";
    "investment"; "nigeria"; "prince"; "urgent"; "confidential"; "rolex";
    "replica"; "weight"; "loss"; "miracle"; "singles"; "hot";
  |]

let common_vocabulary =
  [|
    "the"; "a"; "to"; "of"; "and"; "you"; "for"; "is"; "this"; "that"; "with";
    "your"; "have"; "will"; "please"; "on"; "in"; "we"; "be"; "at";
  |]

let leet = [ ('a', '4'); ('e', '3'); ('i', '1'); ('o', '0'); ('s', '5'); ('l', '7') ]

let misspell rng token =
  if String.length token < 2 then token
  else begin
    let b = Bytes.of_string token in
    let substitutable =
      List.filter
        (fun i -> List.mem_assoc (Bytes.get b i) leet)
        (List.init (Bytes.length b) (fun i -> i))
    in
    match substitutable with
    | [] ->
        (* No leet-able letter: inject punctuation after the first
           character ("sex" -> "s.ex" style). *)
        let pos = 1 + Sim.Rng.int rng (String.length token - 1) in
        String.sub token 0 pos ^ "." ^ String.sub token pos (String.length token - pos)
    | i :: _ ->
        (* First substitutable letter, deterministically: repeated
           obfuscations of a token collide, which matches real spam
           (everyone writes "v1agra"). *)
        Bytes.set b i (List.assoc (Bytes.get b i) leet);
        Bytes.to_string b
  end

let draw_tokens rng ~count ~primary ~primary_weight =
  List.init count (fun _ ->
      if Sim.Dist.bernoulli rng primary_weight then Sim.Rng.pick rng primary
      else Sim.Rng.pick rng common_vocabulary)

let generate rng p =
  if p.spam_fraction < 0. || p.spam_fraction > 1. then
    invalid_arg "Corpus.generate: spam_fraction out of range";
  List.init p.n (fun _ ->
      if Sim.Dist.bernoulli rng p.spam_fraction then begin
        let tokens =
          draw_tokens rng ~count:p.tokens_per_message ~primary:spam_vocabulary
            ~primary_weight:0.6
        in
        let tokens =
          List.map
            (fun tok ->
              if
                Array.exists (String.equal tok) spam_vocabulary
                && Sim.Dist.bernoulli rng p.misspell_probability
              then misspell rng tok
              else tok)
            tokens
        in
        { label = Spam; tokens }
      end
      else if Sim.Dist.bernoulli rng p.newsletter_fraction then
        (* A legitimate commercial newsletter: wanted mail whose words
           look like spam ("free", "offer", "limited"). *)
        {
          label = Ham;
          tokens =
            List.map
              (fun tok ->
                if Sim.Dist.bernoulli rng 0.45 then Sim.Rng.pick rng spam_vocabulary
                else tok)
              (draw_tokens rng ~count:p.tokens_per_message ~primary:ham_vocabulary
                 ~primary_weight:0.3);
        }
      else
        {
          label = Ham;
          tokens =
            draw_tokens rng ~count:p.tokens_per_message ~primary:ham_vocabulary
              ~primary_weight:0.55;
        })
