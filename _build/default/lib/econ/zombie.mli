(** Email-virus / zombie outbreak model (experiment E6).

    §5: a user-specified daily spending limit bounds the e-penny cost a
    zombie can inflict, blocks further outgoing mail for the day, and —
    because hitting the limit triggers a warning — becomes a detection
    mechanism for infected machines.  This model spreads a mass-mailing
    virus through a contact graph and measures how the limit changes
    liability, leakage and time-to-detection. *)

type params = {
  users : int;
  initially_infected : int;
  contacts_per_user : int;  (** Address-book size the virus mails. *)
  virus_sends_per_day : int;  (** Messages an infected machine attempts daily. *)
  infection_probability : float;  (** Per received virus message. *)
  daily_limit : int;  (** The Zmail [limit] array entry; [max_int] disables. *)
  legitimate_sends_per_day : int;
      (** The owner's own traffic, which shares the limit. *)
  disinfect_after_warning_days : int;
      (** Days from warning to cleanup (user reaction time). *)
  days : int;
}

val default_params : params

type day_point = {
  day : int;
  infected : int;
  detected : int;  (** Cumulative machines whose owners were warned. *)
  virus_sent : int;  (** Virus messages that left infected machines today. *)
  virus_blocked : int;  (** Attempts stopped by the daily limit today. *)
  legit_blocked : int;
      (** The owner's legitimate messages blocked because the zombie
          exhausted the limit (the mechanism's collateral cost). *)
}

type outcome = {
  series : day_point list;
  peak_infected : int;
  total_virus_delivered : int;
  max_user_liability_epennies : int;
      (** Worst per-user e-penny spend on virus traffic in one day. *)
  mean_detection_day : float;  (** [nan] if nothing was detected. *)
}

val simulate : Sim.Rng.t -> params -> outcome
