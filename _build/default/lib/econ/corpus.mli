(** Synthetic labelled email corpus for the filtering baselines (E8).

    Generates ham and spam token streams from overlapping vocabularies,
    with an adversarial knob: spammers misspell their most incriminating
    tokens ("viagra" → "v1agra") with some probability, which is the
    evasion §2.2 of the paper says always eventually defeats content
    filters. *)

type label = Ham | Spam

type document = { label : label; tokens : string list }

type params = {
  n : int;
  spam_fraction : float;
  tokens_per_message : int;
  misspell_probability : float;
      (** Chance each spammy token in a spam message is obfuscated. *)
  newsletter_fraction : float;
      (** Fraction of {e ham} written in commercial-newsletter style
          (heavy overlap with the spam vocabulary) — the messages §2.2
          says filters misclassify.  Train/test distribution shift on
          this knob is what produces realistic false positives. *)
}

val default_params : params

val generate : Sim.Rng.t -> params -> document list
(** Draw [n] labelled documents. *)

val misspell : Sim.Rng.t -> string -> string
(** One obfuscation step: leetspeak substitution or an inserted
    punctuation mark; always returns a token different from the
    input for tokens of length >= 2. *)

val ham_vocabulary : string array
val spam_vocabulary : string array
val common_vocabulary : string array
