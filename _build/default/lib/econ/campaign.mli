(** Spam-campaign economics.

    A campaign is a bulk mailer with a mailing list, a response rate and
    a revenue per response.  §1.2 of the paper argues that pricing email
    at one e-penny ($0.01) raises a spammer's marginal cost by at least
    two orders of magnitude over today's ~$10⁻⁴/message botnet cost, so
    "the response rate required to break even will increase similarly".
    These types make that argument computable. *)

type t = {
  id : int;
  list_size : int;  (** Recipients per blast. *)
  blasts_per_month : int;
  response_rate : float;  (** Fraction of delivered spam that converts. *)
  value_per_response : float;  (** Revenue per conversion, in dollars. *)
  infra_cost_per_message : float;
      (** Pre-Zmail marginal sending cost in dollars (botnet rental,
          bandwidth). *)
}

val v :
  id:int -> list_size:int -> blasts_per_month:int -> response_rate:float ->
  value_per_response:float -> infra_cost_per_message:float -> t
(** Validating constructor.
    @raise Invalid_argument on non-positive sizes or rates outside
    sensible ranges. *)

val profit_per_message : t -> price:float -> float
(** Expected profit of one more message when sending costs [price]
    dollars: [response_rate *. value_per_response -. infra -. price]. *)

val viable : t -> price:float -> bool
(** A campaign keeps operating while its marginal profit is positive. *)

val monthly_volume : t -> int
(** Messages per month if the campaign runs: [list_size * blasts]. *)

val monthly_profit : t -> price:float -> float

val break_even_response_rate : value_per_response:float -> infra:float -> price:float -> float
(** The response rate at which profit per message is exactly zero. *)

(** Parameters for a synthetic campaign population.  Defaults are
    calibrated to the early-2000s figures the paper's citations imply:
    response rates log-normal around 3·10⁻⁴, revenue per response
    log-normal around $20, infra cost $10⁻⁴/message. *)
type population_params = {
  n : int;
  response_rate_mu : float;  (** log-space mean. *)
  response_rate_sigma : float;
  value_mu : float;
  value_sigma : float;
  list_size_mean : float;  (** Pareto-ish heavy tail. *)
  infra_cost : float;
}

val default_population : population_params

val population : Sim.Rng.t -> population_params -> t list
(** Draw [n] heterogeneous campaigns. *)

val pp : Format.formatter -> t -> unit
