type t = {
  caption : string;
  header : string list;
  mutable body : string list list;
}

let create ~title ~columns = { caption = title; header = columns; body = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d"
         t.caption (List.length t.header) (List.length row));
  t.body <- row :: t.body

let add_rows t rows = List.iter (add_row t) rows

let title t = t.caption
let columns t = t.header
let rows t = List.rev t.body

let cell v = Printf.sprintf "%.4g" v
let cell_int v = string_of_int v
let cell_pct v = Printf.sprintf "%.2f%%" (100. *. v)
let cell_money v = Printf.sprintf "$%.2f" v

let pp ppf t =
  let all = t.header :: rows t in
  let arity = List.length t.header in
  let widths = Array.make arity 0 in
  let account row =
    List.iteri
      (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  List.iter account all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render row = String.concat "  " (List.mapi pad row) in
  Format.fprintf ppf "== %s ==@." t.caption;
  Format.fprintf ppf "%s@." (render t.header);
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Format.fprintf ppf "%s@." rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) (rows t)

let print t =
  Format.printf "%a@." pp t
