(** Random-variate samplers over a {!Rng.t} stream.

    All samplers take the generator explicitly so that call sites make
    their consumption of randomness visible and reproducible. *)

val bernoulli : Rng.t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p] ([p] clamped to
    [\[0, 1\]]). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val uniform_int : Rng.t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]].  Requires
    [lo <= hi]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1 /. rate]).  [rate] must be
    positive. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via the Box–Muller transform. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** Log-normal: [exp] of a Gaussian with parameters [mu], [sigma]. *)

val pareto : Rng.t -> scale:float -> shape:float -> float
(** Pareto with minimum [scale] and tail index [shape]; both positive. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson-distributed count.  Uses Knuth's product method for small
    means and a normal approximation above [mean = 64]. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success, [p] in [(0, 1\]]. *)

val zipf : n:int -> s:float -> Rng.t -> int
(** [zipf ~n ~s] builds a sampler over ranks [1..n] with exponent [s]
    (probability of rank [k] proportional to [1 /. k ** s]).  The table
    is computed once; apply the result to a generator per draw. *)

val categorical : weights:float array -> Rng.t -> int
(** [categorical ~weights] builds a sampler returning index [i] with
    probability proportional to [weights.(i)].  Weights must be
    non-negative with a positive sum. *)
