lib/sim/table.ml: Array Format List Printf Stdlib String
