lib/sim/heap.mli:
