lib/sim/engine.ml: Hashtbl Heap Rng Stdlib
