lib/sim/rng.mli:
