(** Plain-text table rendering for experiment output.

    Every experiment harness produces a {!t}; benches, examples and the
    CLI all print through {!print} so tables look identical everywhere. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row.
    @raise Invalid_argument if the arity differs from the header. *)

val add_rows : t -> string list list -> unit

val title : t -> string
val columns : t -> string list
val rows : t -> string list list
(** Rows in insertion order. *)

val cell : float -> string
(** Canonical compact formatting for numeric cells ([%.4g]). *)

val cell_int : int -> string
val cell_pct : float -> string
(** Format a ratio in [\[0,1\]] as a percentage with two decimals. *)

val cell_money : float -> string
(** Format a dollar amount, e.g. [$12.34]. *)

val pp : Format.formatter -> t -> unit
(** Render with aligned columns, a rule under the header, and the title
    above. *)

val print : t -> unit
(** [pp] to standard output followed by a blank line. *)
