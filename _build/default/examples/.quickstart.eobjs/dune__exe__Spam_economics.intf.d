examples/spam_economics.mli:
