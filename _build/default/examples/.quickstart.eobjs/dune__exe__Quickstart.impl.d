examples/quickstart.ml: Format Smtp Zmail
