examples/quickstart.mli:
