examples/spam_economics.ml: Econ Format List Sim
