examples/zombie_outbreak.mli:
