examples/mailing_list_day.ml: Format List Printf Smtp Zmail
