examples/incremental_deployment.ml: Econ Format List Sim String
