examples/mailing_list_day.mli:
