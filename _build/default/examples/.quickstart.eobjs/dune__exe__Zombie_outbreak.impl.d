examples/zombie_outbreak.ml: Econ Float Format List Printf Sim Zmail
