(* Zombie outbreak: the daily spending limit as a virus circuit-breaker
   (paper §5).

   Run with: dune exec examples/zombie_outbreak.exe *)

let () =
  let show label daily_limit =
    let rng = Sim.Rng.create 99 in
    let outcome =
      Econ.Zombie.simulate rng
        { Econ.Zombie.default_params with Econ.Zombie.daily_limit; days = 20 }
    in
    Format.printf "%s@." label;
    List.iter
      (fun d ->
        if d.Econ.Zombie.day mod 4 = 0 then
          Format.printf
            "  day %2d: %4d infected, %3d owners warned, %7d virus mails out, %7d blocked@."
            d.Econ.Zombie.day d.Econ.Zombie.infected d.Econ.Zombie.detected
            d.Econ.Zombie.virus_sent d.Econ.Zombie.virus_blocked)
      outcome.Econ.Zombie.series;
    Format.printf
      "  => peak %d infected; worst per-user bill %s; detection on average day %s@.@."
      outcome.Econ.Zombie.peak_infected
      (Printf.sprintf "$%.2f"
         (Zmail.Epenny.to_dollars outcome.Econ.Zombie.max_user_liability_epennies))
      (if Float.is_nan outcome.Econ.Zombie.mean_detection_day then "never"
       else Printf.sprintf "%.1f" outcome.Econ.Zombie.mean_detection_day)
  in
  show "Without limits (the pre-Zmail world):" max_int;
  show "With a 100-message daily limit:" 100;
  show "With a tight 20-message daily limit:" 20;
  Format.printf
    "The limit caps each owner's liability, throttles the outbreak, and the \
     warning turns every capped machine into a detected zombie.@."
