(* A day in the life of a mailing list under Zmail (paper §5).

   The distributor pays one e-penny per subscriber per post; receiving
   ISPs answer with automatic acknowledgment emails that return the
   e-penny — and double as liveness probes that keep the roster clean.

   Run with: dune exec examples/mailing_list_day.exe *)

let () =
  (* ISP 2 is non-compliant: subscribers there behave like dead
     addresses (their ISP never generates acknowledgments). *)
  let world =
    Zmail.World.create
      { (Zmail.World.default_config ~n_isps:3 ~users_per_isp:20) with
        Zmail.World.compliant = [| true; true; false |];
        customize_isp = (fun _ c -> { c with Zmail.Isp.initial_balance = 500 }) }
  in
  let list = Zmail.World.host_list world ~isp:0 ~user:0 ~list_id:"caml-list" in

  (* 12 live subscribers across the compliant ISPs, 3 dead ones. *)
  for k = 1 to 6 do
    Zmail.Listserv.subscribe list (Zmail.World.address world ~isp:0 ~user:k);
    Zmail.Listserv.subscribe list (Zmail.World.address world ~isp:1 ~user:k)
  done;
  for k = 0 to 2 do
    Zmail.Listserv.subscribe list (Zmail.World.address world ~isp:2 ~user:k)
  done;
  Format.printf "caml-list has %d subscribers (3 of them dead).@.@."
    (Zmail.Listserv.subscriber_count list);

  let post n =
    let sent = Zmail.World.post_to_list world list ~body:(Printf.sprintf "Digest #%d" n) in
    Zmail.World.run_days world 0.02;
    Zmail.Listserv.note_post_complete list;
    Format.printf
      "post #%d: %2d copies sent, %2d e-pennies refunded so far, net cost %d@."
      n sent
      (Zmail.Listserv.epennies_refunded list)
      (Zmail.Listserv.net_cost list)
  in
  post 1;
  post 2;
  post 3;

  (* After three silent posts, the dead addresses are pruned. *)
  let removed = Zmail.Listserv.prune list ~max_missed:3 in
  Format.printf "@.Pruned %d dead subscribers:@." (List.length removed);
  List.iter (fun a -> Format.printf "  %s@." (Smtp.Address.to_string a)) removed;
  Format.printf "Roster is down to %d live readers; every further post is net-free.@."
    (Zmail.Listserv.subscriber_count list)
