(* Incremental deployment: from two compliant ISPs to the whole network
   (paper §1.3 and §5).

   Run with: dune exec examples/incremental_deployment.exe *)

let () =
  let rng = Sim.Rng.create 7 in
  let params = Econ.Adoption.default_params in
  let series = Econ.Adoption.simulate rng params in
  Format.printf
    "Twenty ISPs, two of them Zmail-compliant on day 0.  Users at hold-out \
     ISPs see %.0f spam/day; compliant users see %.1f.@.@."
    params.Econ.Adoption.spam_per_user_day
    (params.Econ.Adoption.spam_per_user_day
    *. (1. -. params.Econ.Adoption.compliant_spam_suppression));
  Format.printf "day | compliant ISPs | users behind compliant ISPs@.";
  List.iter
    (fun p ->
      if p.Econ.Adoption.day mod 20 = 0 then begin
        let bar =
          String.make p.Econ.Adoption.compliant_isps '#'
          ^ String.make (params.Econ.Adoption.n_isps - p.Econ.Adoption.compliant_isps) '.'
        in
        Format.printf "%3d | %s | %5.1f%%@." p.Econ.Adoption.day bar
          (100. *. p.Econ.Adoption.compliant_user_share)
      end)
    series;
  (match Econ.Adoption.days_to_majority ~total_isps:params.Econ.Adoption.n_isps series with
  | Some day -> Format.printf "@.A majority of ISPs is compliant by day %d.@." day
  | None -> Format.printf "@.No majority within the horizon.@.");
  Format.printf
    "The feedback loop: users flee spam toward compliant ISPs, and losing \
     users pushes the remaining ISPs over their adoption thresholds.@."
