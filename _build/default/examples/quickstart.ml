(* Quickstart: two compliant ISPs, one e-penny per message.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A world with two compliant ISPs, three users each. *)
  let world =
    Zmail.World.create (Zmail.World.default_config ~n_isps:2 ~users_per_isp:3)
  in
  let balance isp user =
    Zmail.Ledger.balance (Zmail.Isp.ledger (Zmail.World.isp world isp)) ~user
  in
  Format.printf "alice@@isp0 starts with %d e-pennies; bob@@isp1 with %d.@."
    (balance 0 0) (balance 1 0);

  (* Alice mails Bob.  Under the hood: her ISP charges one e-penny,
     stamps the X-Zmail-Payment header, opens an SMTP session to Bob's
     ISP, and Bob's ISP credits him on delivery. *)
  (match
     Zmail.World.send_email world ~from:(0, 0) ~to_:(1, 0)
       ~subject:"lunch tomorrow?" ~body:"Noon at the usual place." ()
   with
  | Zmail.World.Submitted `Paid -> Format.printf "Message submitted (paid).@."
  | _ -> assert false);
  Zmail.World.run_until_quiet world;

  Format.printf "After delivery: alice has %d, bob has %d.@." (balance 0 0)
    (balance 1 0);

  (* Bob's inbox holds the real RFC-822-style message. *)
  let inbox =
    Smtp.Mailbox.messages
      (Smtp.Mta.mailboxes (Zmail.World.mta world 1))
      (Zmail.World.address world ~isp:1 ~user:0)
  in
  (match inbox with
  | [ message ] ->
      Format.printf "Bob's inbox:@.%s@." (Smtp.Message.to_string message)
  | _ -> assert false);

  (* Zero-sum: no e-penny was created or destroyed. *)
  assert (Zmail.World.conservation_holds world);
  Format.printf "Conservation invariant holds: the e-penny moved, nothing more.@."
