(* Spam economics: why a one-e-penny price kills bulk mail (paper §1.2).

   Run with: dune exec examples/spam_economics.exe *)

let () =
  let rng = Sim.Rng.create 2024 in

  (* One concrete spammer, with early-2000s economics: a 100k-address
     list, 0.03% response rate, $25 per sale, botnet costs of
     $0.0001/message. *)
  let campaign =
    Econ.Campaign.v ~id:0 ~list_size:100_000 ~blasts_per_month:4
      ~response_rate:3e-4 ~value_per_response:25. ~infra_cost_per_message:1e-4
  in
  Format.printf "A single campaign (100k list, r=0.03%%, $25/response):@.";
  List.iter
    (fun price ->
      Format.printf "  at %.2fc/message: profit %+.4f $/message -> %s@."
        (price *. 100.)
        (Econ.Campaign.profit_per_message campaign ~price)
        (if Econ.Campaign.viable campaign ~price then "keeps spamming" else "shuts down"))
    [ 0.; 0.001; 0.01 ];

  (* The break-even response rate is the paper's "two orders of
     magnitude" claim made precise. *)
  let break_even price =
    Econ.Campaign.break_even_response_rate ~value_per_response:25. ~infra:1e-4 ~price
  in
  Format.printf
    "@.Break-even response rate: %.2e free -> %.2e at one e-penny (%.0fx).@."
    (break_even 0.) (break_even 0.01)
    (break_even 0.01 /. break_even 0.);

  (* And the population view: the E1 sweep over 200 heterogeneous
     campaigns. *)
  Format.printf "@.Across a heterogeneous campaign population:@.@.";
  let campaigns = Econ.Campaign.population rng Econ.Campaign.default_population in
  List.iter
    (fun point ->
      Format.printf "  %5.2fc/msg: %3d/%d campaigns survive, %6.2f%% of volume@."
        (point.Econ.Market.price *. 100.)
        point.Econ.Market.viable_campaigns point.Econ.Market.total_campaigns
        (100. *. point.Econ.Market.volume_fraction))
    (Econ.Market.sweep campaigns ~prices:[ 0.; 0.001; 0.005; 0.01; 0.02 ]);
  Format.printf
    "@.A normal user sending 20 messages/day pays 20c -- and earns it back from \
     the mail they receive.@."
