(* zmail-sim: command-line front end for the Zmail reproduction.

   Subcommands:
     experiment   run one reproduction experiment (or all of them)
     demo         simulate a small Zmail world and print a summary
     explore      exhaustively check the Section-4 protocol spec
     claims       list the paper claims each experiment reproduces

   An experiment id can also be given directly (`zmail-sim e16`), which
   is shorthand for `zmail-sim experiment e16`. *)

open Cmdliner

let seed_arg =
  let doc = "Seed for all randomness (experiments are deterministic per seed)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Record the experiment's event trace and write it to $(docv) at exit."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace file format: $(b,jsonl) (one JSON object per event) or \
     $(b,chrome) (Chrome trace_event JSON, loadable in Perfetto / \
     chrome://tracing)."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT" ~doc)

let metrics_arg =
  let doc = "Append the metric-registry table to the experiment output." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let full_arg =
  let doc =
    "Run the nightly-scale variant where one exists: E17 adds its \
     million-user row, E18 raises its adversary grid to 100 ISPs x 1000 \
     users per cell, E19 does the same for its bank-wire grid and grows \
     the federation to 16 member banks, E21 scales its collusion grid, \
     adds the 5-ring plan and appends a 10^4-ISP cell, E23 sweeps every \
     fault level densely under both chaos settings (all take minutes).  \
     Experiments without a larger variant ignore the flag."
  in
  Arg.(value & flag & info [ "full"; "million" ] ~doc)

let checkpoint_every_arg =
  let doc =
    "Write a world snapshot to the $(b,--snapshot) file every $(docv) \
     simulated seconds (E2, E3, E16, E17, E18, E19, E20 and E21's world \
     grids only)."
  in
  Arg.(value & opt (some float) None & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc)

let snapshot_arg =
  let doc = "Snapshot file written by --checkpoint-every / --stop-at." in
  Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Resume from a snapshot file: the run replays deterministically to the \
     snapshot's capture time, byte-verifies the replayed world against it, \
     then continues.  Output is identical to an uninterrupted run."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let stop_at_arg =
  let doc =
    "Stop once simulated time reaches $(docv) seconds, after writing the \
     $(b,--snapshot) file; exits 0."
  in
  Arg.(value & opt (some float) None & info [ "stop-at" ] ~docv:"SECONDS" ~doc)

let domains_arg =
  let doc =
    "Step domain-aware experiments (E17, E22) on $(docv) OCaml domains \
     via the sharded Parworld backend.  Output is byte-identical for \
     every value of $(docv); values above 1 need an OCaml 5 runtime \
     (earlier runtimes fall back to sequential stepping with a stderr \
     note).  Other experiments ignore the flag."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

(* Shared by the `experiment` subcommand and the default command. *)
let run_experiments id seed full trace trace_format metrics checkpoint_every
    snapshot resume stop_at domains =
  let tracer =
    match trace with
    (* A generous ring: full traces for every experiment here; a long
       organic run keeps its most recent window (dropped count shown). *)
    | Some _ -> Some (Obs.Trace.create ~capacity:262_144 ())
    | None -> None
  in
  let obs = { Obs.Run.tracer; metrics } in
  let id = String.lowercase_ascii id in
  let persist_requested =
    checkpoint_every <> None || snapshot <> None || resume <> None
    || stop_at <> None
  in
  if persist_requested && id = "all" then
    Error
      "--checkpoint-every/--snapshot/--resume/--stop-at need a single \
       experiment id"
  else
    let outcome =
      try
        let persist =
          if persist_requested then
            Harness.Checkpoint.create ?checkpoint_every ?snapshot ?resume
              ?stop_at ~experiment:id ()
          else Harness.Checkpoint.none
        in
        let result =
          if id = "all" then begin
            Harness.Experiments.run_all ~seed ~full ~obs ?domains ();
            Ok ()
          end
          else Harness.Experiments.run_one ~seed ~full ~obs ~persist ?domains id
        in
        match result with
        | Ok () -> (
            match Harness.Checkpoint.finished persist with
            | Ok () -> `Done
            | Error msg -> `Err ("checkpoint: " ^ msg))
        | Error msg -> `Err msg
      with
      | Harness.Checkpoint.Stopped { time; file } -> `Stopped (time, file)
      | Invalid_argument msg -> `Err msg
    in
    match outcome with
    | `Done ->
        (match (trace, tracer) with
        | Some path, Some tr ->
            let events = Obs.Trace.events tr in
            Obs.Export.write_file ~path ~format:trace_format events;
            Format.printf
              "trace: %d events written to %s (%d emitted, %d evicted)@."
              (List.length events) path (Obs.Trace.emitted tr)
              (Obs.Trace.dropped tr)
        | _ -> ());
        Ok ()
    | `Stopped (time, file) ->
        (* Partial run: no trace export (the resumed run produces the
           complete, byte-identical one). *)
        Printf.eprintf "checkpoint: run stopped at t=%.0f%s\n%!" time
          (match file with
          | Some f -> Printf.sprintf "; resume with --resume %s" f
          | None -> "");
        Ok ()
    | `Err msg -> Error msg

let verbosity_arg =
  let doc = "Log protocol events ($(docv) = info or debug)." in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"LEVEL" ~doc)

let setup_logs level =
  match level with
  | None -> ()
  | Some name ->
      let level =
        match String.lowercase_ascii name with
        | "debug" -> Logs.Debug
        | "info" -> Logs.Info
        | _ -> Logs.Warning
      in
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level (Some level)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id: e1..e23, or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let term =
    Term.(
      term_result'
        (const run_experiments $ id_arg $ seed_arg $ full_arg $ trace_arg
        $ trace_format_arg $ metrics_arg $ checkpoint_every_arg $ snapshot_arg
        $ resume_arg $ stop_at_arg $ domains_arg))
  in
  let doc = "Run a reproduction experiment and print its table(s)" in
  Cmd.v (Cmd.info "experiment" ~doc) term

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let demo n_isps users days spammers seed log_level =
  setup_logs log_level;
  let world =
    Zmail.World.create
      { (Zmail.World.default_config ~n_isps ~users_per_isp:users) with
        Zmail.World.seed;
        audit_period = Some (12. *. Sim.Engine.hour) }
  in
  Zmail.World.attach_user_traffic world ();
  for k = 0 to spammers - 1 do
    Zmail.World.attach_bulk_sender world ~isp:(k mod n_isps) ~user:0 ~per_day:2000. ()
  done;
  Format.printf "Simulating %d ISPs x %d users for %g days (%d bulk senders)...@."
    n_isps users days spammers;
  Zmail.World.run_days world days;
  let c = Zmail.World.counters world in
  let table =
    Sim.Table.create ~title:"demo: world summary"
      ~columns:[ "metric"; "value" ]
  in
  let add name v = Sim.Table.add_row table [ name; v ] in
  add "legitimate mail delivered" (Sim.Table.cell_int c.Zmail.World.ham_delivered);
  add "spam delivered" (Sim.Table.cell_int c.Zmail.World.spam_delivered);
  add "sends blocked (no e-pennies)" (Sim.Table.cell_int c.Zmail.World.blocked_balance);
  add "sends blocked (daily limit)" (Sim.Table.cell_int c.Zmail.World.blocked_limit);
  add "limit warnings (zombie alarms)" (Sim.Table.cell_int c.Zmail.World.limit_warnings);
  add "sends buffered by audits" (Sim.Table.cell_int c.Zmail.World.deferred_sends);
  add "audits completed"
    (Sim.Table.cell_int (List.length (Zmail.World.audit_results world)));
  add "audit violations"
    (Sim.Table.cell_int
       (List.fold_left
          (fun acc r -> acc + List.length r.Zmail.Bank.violations)
          0 (Zmail.World.audit_results world)));
  let bank_stats = Zmail.Bank.stats (Zmail.World.bank world) in
  add "bank e-penny sales (buys)" (Sim.Table.cell_int bank_stats.Zmail.Bank.buys);
  add "bank buy-backs (sells)" (Sim.Table.cell_int bank_stats.Zmail.Bank.sells);
  add "outstanding e-pennies"
    (Sim.Table.cell_int (Zmail.Bank.outstanding_epennies (Zmail.World.bank world)));
  Sim.Table.print table

let demo_cmd =
  let isps = Arg.(value & opt int 3 & info [ "isps" ] ~docv:"N" ~doc:"Number of ISPs.") in
  let users =
    Arg.(value & opt int 50 & info [ "users" ] ~docv:"N" ~doc:"Users per ISP.")
  in
  let days = Arg.(value & opt float 2. & info [ "days" ] ~docv:"D" ~doc:"Simulated days.") in
  let spammers =
    Arg.(value & opt int 1 & info [ "spammers" ] ~docv:"N" ~doc:"Bulk senders to attach.")
  in
  let term =
    Term.(const demo $ isps $ users $ days $ spammers $ seed_arg $ verbosity_arg)
  in
  let doc = "Simulate a Zmail world and print a summary" in
  Cmd.v (Cmd.info "demo" ~doc) term

(* ------------------------------------------------------------------ *)
(* explore                                                             *)
(* ------------------------------------------------------------------ *)

let explore literal max_states =
  let cfg =
    { Zmail.Ap_spec.default_config with
      Zmail.Ap_spec.snapshot =
        (if literal then Zmail.Ap_spec.Paper_literal else Zmail.Ap_spec.Two_phase) }
  in
  Format.printf
    "Exploring the Section-4 protocol (2 ISPs x 2 users, 1 audit, %s snapshot rule)...@."
    (if literal then "paper-literal" else "two-phase");
  match
    Apn.Explore.run ~max_states ~invariant:(Zmail.Ap_spec.all_invariants cfg)
      (Zmail.Ap_spec.build cfg)
  with
  | Apn.Explore.Exhausted { visited } ->
      Format.printf
        "All %d reachable states satisfy conservation, limit, freeze-consistency \
         and audit-cleanliness.@."
        visited
  | Apn.Explore.Bounded { visited } ->
      Format.printf "No violation in the %d states explored (bounded).@." visited
  | Apn.Explore.Violation { trace; detail; _ } ->
      Format.printf "VIOLATION: %s@.witness interleaving:@." detail;
      List.iter (fun step -> Format.printf "  %s@." step) trace

let explore_cmd =
  let literal =
    Arg.(
      value & flag
      & info [ "literal" ]
          ~doc:
            "Use the paper's literal snapshot rule (exhibits the \
             false-accusation race) instead of the sound two-phase variant.")
  in
  let max_states =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~docv:"N" ~doc:"State budget.")
  in
  let term = Term.(const explore $ literal $ max_states) in
  let doc = "Exhaustively model-check the Section-4 Abstract Protocol spec" in
  Cmd.v (Cmd.info "explore" ~doc) term

(* ------------------------------------------------------------------ *)
(* claims                                                              *)
(* ------------------------------------------------------------------ *)

let claims () =
  List.iter
    (fun e ->
      Format.printf "%-4s %s@.     %s@.@."
        (String.uppercase_ascii e.Harness.Experiments.id)
        e.Harness.Experiments.title e.Harness.Experiments.claim)
    Harness.Experiments.all

let claims_cmd =
  let doc = "List the paper claims each experiment reproduces" in
  Cmd.v (Cmd.info "claims" ~doc) Term.(const claims $ const ())

(* ------------------------------------------------------------------ *)

(* A bare experiment id (`zmail-sim e16 --trace t.json`) is shorthand
   for `zmail-sim experiment e16 ...`: rewrite argv before cmdliner
   sees it.  [Cmd.group] treats an unrecognised first positional as an
   unknown-command error rather than falling through to a default
   term, so the rewrite has to happen up front. *)
let argv =
  let argv = Sys.argv in
  if Array.length argv > 1 then
    let first = String.lowercase_ascii argv.(1) in
    let is_experiment_id =
      first = "all" || Option.is_some (Harness.Experiments.find first)
    in
    if is_experiment_id then
      Array.concat [ [| argv.(0); "experiment" |]; Array.sub argv 1 (Array.length argv - 1) ]
    else argv
  else argv

let () =
  let doc = "Zmail: zero-sum free market control of spam (ICDCS 2005) — reproduction" in
  let info = Cmd.info "zmail-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval ~argv
       (Cmd.group info [ experiment_cmd; demo_cmd; explore_cmd; claims_cmd ]))
