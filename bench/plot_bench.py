#!/usr/bin/env python3
"""Trend report over the committed benchmark baselines.

Reads every bench/BENCH_*.json (sorted by filename, which embeds the
date), plus any extra report paths given on the command line, and
prints one trend table: the headline series (engine, e17_scale and
serving-path latency events/sec, allocation per event, peak heap,
the latency cell's paid-class p99, snapshot bandwidth, audit-verify
cost, clearing settle cost and message count, multi-domain stepping
speedups and the incremental-snapshot capture speedup) as columns,
one row per baseline, with the percent delta from the previous row
in parentheses.

Pure stdlib, no matplotlib: the output is a table, not a picture, so
it works in CI logs and terminals.  Keys absent from older schemas
(audit_verify appeared in schema 2, clearing later in schema 2, the
latency row later still, engine_domains and snapshot_incremental in
schema 3, the wal rows in schema 4) render as an em-dash cell rather
than failing, so the tool
can always read the whole history — a baseline recorded before a
series existed is simply blank in that column, and the percent delta
resumes from the first baseline that has it.  A zero-valued previous
entry has no defined percent delta; the delta renders as MISSING
instead of dividing by zero.  A value a formatter cannot render
(e.g. a hand-edited report turning a count into a float) falls back
to repr instead of aborting the report.

Usage:
    python3 bench/plot_bench.py [extra_report.json ...]
"""

import glob
import json
import os
import sys


def get(report, *path):
    """Walk nested dicts; None when any key is missing."""
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


SERIES = [
    # (column header, formatter, path into the report)
    ("engine ev/s", "{:,.0f}", ("engine", "events_per_sec")),
    ("e17 ev/s", "{:,.0f}", ("e17_scale", "events_per_sec")),
    ("latency ev/s", "{:,.0f}", ("latency", "events_per_sec")),
    ("paid p99 s", "{:.3f}", ("latency", "paid_p99_s")),
    ("alloc w/ev", "{:.1f}", ("e17_scale", "alloc_words_per_event")),
    ("peak heap Mw", "{:.1f}", ("e17_scale", "peak_heap_words")),
    ("snap write MB/s", "{:.1f}", ("snapshot", "write_mb_per_s")),
    ("snap read MB/s", "{:.1f}", ("snapshot", "read_mb_per_s")),
    ("verify(100) us", "{:.1f}", ("audit_verify", "n100_us_per_round")),
    ("verify(1000) us", "{:.1f}", ("audit_verify", "n1000_us_per_round")),
    # Sparse-engine sub-keys appeared with the lib/audit engine; older
    # baselines render these as em-dashes.
    ("sparse(10^3) us", "{:.1f}", ("audit_verify", "sparse", "n1000_us_per_round")),
    ("sparse(10^4) us", "{:.1f}", ("audit_verify", "sparse", "n10000_us_per_round")),
    ("sparse 10^3->10^4", "{:.1f}x", ("audit_verify", "sparse", "ratio_1000_to_10000")),
    ("clear(4) ms", "{:.2f}", ("clearing", "banks4", "settle_ms")),
    ("clear(4) msgs", "{:d}", ("clearing", "banks4", "messages")),
    ("clear(16) ms", "{:.2f}", ("clearing", "banks16", "settle_ms")),
    ("clear(16) msgs", "{:d}", ("clearing", "banks16", "messages")),
    # Schema-3 series: Parworld multi-domain stepping and the
    # incremental-snapshot capture path.
    ("domains ev/s", "{:,.0f}", ("engine_domains", "events_per_sec")),
    ("domains x2", "{:.2f}x", ("engine_domains", "speedup_2")),
    ("domains x4", "{:.2f}x", ("engine_domains", "speedup_4")),
    ("snap incr speedup", "{:.2f}x", ("snapshot_incremental", "speedup")),
    # Schema-4 series: the durable-WAL append and recovery paths.
    ("wal append g8 rec/s", "{:,.0f}", ("wal", "append_g8_records_per_sec")),
    ("wal recover ms", "{:.3f}", ("wal", "recover_long", "ms")),
]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: skipping {path}: {e}", file=sys.stderr)
        return None


MISSING = "—"  # em dash: "this baseline predates the series"


def cell(fmt, value, previous):
    if value is None:
        return MISSING
    try:
        text = fmt.format(value)
    except (ValueError, TypeError):
        # A report whose value type no longer matches the formatter
        # (schema drift, hand-edited file) still renders.
        text = repr(value)
    if previous is not None:
        if previous == 0:
            # A zero baseline has no defined percent delta; say so
            # rather than divide by zero.
            text += " (MISSING)"
        else:
            try:
                text += " ({:+.1f}%)".format(
                    100.0 * (value - previous) / previous
                )
            except TypeError:
                pass
    return text


def label_of(path):
    label = os.path.basename(path)
    if label.startswith("BENCH_"):
        label = label[len("BENCH_"):]
    if label.endswith(".json"):
        label = label[: -len(".json")]
    return label


def extract(report):
    """One row of raw series values for a parsed report."""
    values = []
    for _, _, series_path in SERIES:
        v = get(report, *series_path)
        if v is not None and series_path == ("e17_scale", "peak_heap_words"):
            v = v / 1e6  # report megawords, not words
        values.append(v)
    return values


def render(rows):
    """Rows of (label, values) -> list of printable table lines."""
    headers = ["baseline"] + [name for name, _, _ in SERIES]
    table = [headers]
    previous = [None] * len(SERIES)
    for label, values in rows:
        rendered = [label]
        for k, ((_, fmt, _), v) in enumerate(zip(SERIES, values)):
            rendered.append(cell(fmt, v, previous[k]))
            if v is not None:
                previous[k] = v
        table.append(rendered)

    widths = [max(len(row[c]) for row in table) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    here = os.path.dirname(os.path.abspath(__file__))
    paths = sorted(glob.glob(os.path.join(here, "BENCH_*.json")))
    paths += argv
    rows = []
    for path in paths:
        report = load(path)
        if report is None:
            continue
        rows.append((label_of(path), extract(report)))
    if not rows:
        print("no bench/BENCH_*.json baselines found", file=sys.stderr)
        return 1
    for line in render(rows):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
