(* Benchmark and experiment harness.

   Usage:
     main.exe            run every experiment table (E1-E23) then the
                         E12 micro-benchmarks
     main.exe e7         run one experiment
     main.exe micro      run only the micro-benchmarks
     main.exe list       list experiments

   Flags (experiment runs): --metrics appends each instrumented
   experiment's metric-registry table; --trace FILE records the event
   trace and writes it out (--trace-format jsonl|chrome); --json FILE
   times every experiment (plus engine throughput, the reduced E17
   scale row, a serving-path E20 cell, §4.4 audit-verify cost at 100
   and 1000 ISPs, inter-bank clearing at 4 and 16 member banks,
   snapshot I/O, the Parworld multi-domain stepping row, the
   incremental-snapshot capture row and the WAL append/recover rows) and
   writes a
   machine-readable report; --json with --full additionally runs the
   nightly-scale rows (E17 at a million users, the E18 grid at 100
   ISPs x 1000 users).  Single-experiment runs also accept the
   checkpoint/resume flags of bin/zmail_sim: --checkpoint-every T,
   --snapshot FILE, --resume FILE, --stop-at T. *)

(* ------------------------------------------------------------------ *)
(* E12: micro-benchmarks of the protocol plumbing                      *)
(* ------------------------------------------------------------------ *)

let kernel_pair () =
  let rng = Sim.Rng.create 42 in
  let compliant = [| true; true |] in
  let bank = Zmail.Bank.create rng (Zmail.Bank.default_config ~n_isps:2 ~compliant) in
  let mk i =
    Zmail.Isp.create rng
      { (Zmail.Isp.default_config ~index:i ~n_isps:2 ~n_users:16 ~compliant
           ~bank_public:(Zmail.Bank.public_key bank))
        with
        Zmail.Isp.initial_balance = 1_000_000_000;
        daily_limit = max_int;
      }
  in
  (mk 0, mk 1)

let bench_transfer =
  let isp0, isp1 = kernel_pair () in
  Bechamel.Test.make ~name:"zmail: charge_send + accept_delivery"
    (Bechamel.Staged.stage (fun () ->
         ignore (Zmail.Isp.charge_send isp0 ~sender:3 ~dest_isp:1);
         ignore (Zmail.Isp.accept_delivery isp1 ~from_isp:0 ~rcpt:5)))

let bench_seal =
  let rng = Sim.Rng.create 7 in
  let pk, _ = Toycrypto.Rsa.generate rng in
  let payload = Bytes.of_string "buy 1000 4242424242" in
  Bechamel.Test.make ~name:"crypto: seal (NCR)"
    (Bechamel.Staged.stage (fun () -> ignore (Toycrypto.Seal.seal rng pk payload)))

let bench_unseal =
  let rng = Sim.Rng.create 7 in
  let pk, sk = Toycrypto.Rsa.generate rng in
  let sealed = Toycrypto.Seal.seal rng pk (Bytes.of_string "buy 1000 4242424242") in
  Bechamel.Test.make ~name:"crypto: unseal (DCR)"
    (Bechamel.Staged.stage (fun () -> ignore (Toycrypto.Seal.unseal sk sealed)))

let bench_sign =
  let rng = Sim.Rng.create 7 in
  let _, sk = Toycrypto.Rsa.generate rng in
  let msg = Bytes.of_string "request 17" in
  Bechamel.Test.make ~name:"crypto: RSA sign"
    (Bechamel.Staged.stage (fun () -> ignore (Toycrypto.Rsa.sign sk msg)))

let bench_siphash =
  let buf = Bytes.make 1024 'x' in
  Bechamel.Test.make ~name:"crypto: siphash-2-4 1KiB"
    (Bechamel.Staged.stage (fun () ->
         ignore (Toycrypto.Hash.siphash ~key:(1L, 2L) buf)))

let bench_xtea =
  let rng = Sim.Rng.create 9 in
  let key = Toycrypto.Xtea.random_key rng in
  let buf = Bytes.make 1024 'x' in
  Bechamel.Test.make ~name:"crypto: xtea-cbc encrypt 1KiB"
    (Bechamel.Staged.stage (fun () ->
         ignore (Toycrypto.Xtea.encrypt_cbc key ~iv:42L buf)))

let bench_nonce =
  let g = Toycrypto.Nonce.create (Sim.Rng.create 1) in
  Bechamel.Test.make ~name:"crypto: NNC nonce"
    (Bechamel.Staged.stage (fun () -> ignore (Toycrypto.Nonce.next g)))

let bench_smtp_codec =
  let line = "MAIL FROM:<alice@example.com>" in
  Bechamel.Test.make ~name:"smtp: command parse+print"
    (Bechamel.Staged.stage (fun () ->
         match Smtp.Command.of_line line with
         | Ok c -> ignore (Smtp.Command.to_line c)
         | Error _ -> assert false))

let bench_smtp_session =
  let alice = Smtp.Address.of_string_exn "alice@a.com" in
  let bob = Smtp.Address.of_string_exn "bob@b.com" in
  let envelope = Smtp.Envelope.v ~sender:alice ~recipients:[ bob ] in
  let message =
    Smtp.Message.make ~from:alice ~to_:[ bob ] ~subject:"x" ~body:"hello" ()
  in
  Bechamel.Test.make ~name:"smtp: full client/server session"
    (Bechamel.Staged.stage (fun () ->
         let server =
           Smtp.Server.create ~hostname:"mx.b.com"
             ~policy:(Smtp.Server.default_policy ~local_domains:[ "b.com" ])
         in
         ignore
           (Smtp.Client.deliver (Smtp.Client.of_server server) ~hostname:"mx.a.com"
              envelope message)))

let bench_audit_verify =
  let n = 20 in
  let rng = Sim.Rng.create 3 in
  let reported =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = j then 0 else Sim.Rng.int rng 100))
  in
  (* Antisymmetric input, so the verify scans every pair cleanly. *)
  let () =
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        reported.(j).(i) <- -reported.(i).(j)
      done
    done
  in
  let compliant = Array.make n true in
  Bechamel.Test.make ~name:"zmail: audit verify 20x20"
    (Bechamel.Staged.stage (fun () ->
         ignore (Zmail.Credit.Audit.verify ~reported ~compliant)))

let bench_hashcash_verify =
  let rng = Sim.Rng.create 4 in
  let stamp, _ = Baselines.Hashcash.mint rng ~recipient:"bob@b.com" ~difficulty:12 in
  Bechamel.Test.make ~name:"baseline: hashcash verify"
    (Bechamel.Staged.stage (fun () -> ignore (Baselines.Hashcash.verify stamp)))

let bench_engine =
  Bechamel.Test.make ~name:"sim: schedule+run 100 events"
    (Bechamel.Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for k = 1 to 100 do
           ignore (Sim.Engine.schedule e ~at:(float_of_int k) (fun () -> ()))
         done;
         Sim.Engine.run e))

let micro_tests =
  [
    bench_transfer;
    bench_seal;
    bench_unseal;
    bench_sign;
    bench_siphash;
    bench_xtea;
    bench_nonce;
    bench_smtp_codec;
    bench_smtp_session;
    bench_audit_verify;
    bench_hashcash_verify;
    bench_engine;
  ]

let run_micro () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) () in
  let table =
    Sim.Table.create ~title:"E12: micro-benchmarks (Bechamel OLS estimates)"
      ~columns:[ "operation"; "ns/op"; "r^2" ]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          let estimate =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | Some [] | None -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Sim.Table.add_row table [ name; estimate; r2 ])
        ols)
    micro_tests;
  Sim.Table.print table

(* ------------------------------------------------------------------ *)
(* --json: machine-readable performance report                         *)
(* ------------------------------------------------------------------ *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Engine event throughput over a busy demo world (traffic, a bulk
   sender, periodic audits): wall-clock events/second through the
   whole stack, not a micro-benchmark.  Best of three runs — the
   workload finishes in tens of milliseconds, so a single sample is
   at the mercy of scheduler noise, and the fastest run is the best
   estimate of the code's actual cost. *)
let engine_throughput () =
  let once () =
    let world =
      Zmail.World.create
        {
          (Zmail.World.default_config ~n_isps:3 ~users_per_isp:50) with
          Zmail.World.seed = 12;
          audit_period = Some (12. *. Sim.Engine.hour);
        }
    in
    Zmail.World.attach_user_traffic world ();
    Zmail.World.attach_bulk_sender world ~isp:0 ~user:0 ~per_day:2000. ();
    let (), seconds = wall (fun () -> Zmail.World.run_days world 2.) in
    let events = Sim.Engine.events_fired (Zmail.World.engine world) in
    (events, seconds)
  in
  let best = ref (once ()) in
  for _ = 2 to 3 do
    let events, seconds = once () in
    if seconds < snd !best then best := (events, seconds)
  done;
  !best

(* E17 at bench scale: a 10^4-user world (20 ISPs x 500 users) driven
   through the same Zipf workload, invariant checkers and audits as
   the real experiment, timed end to end.  One run, not best-of — at
   ~10^5 events the sample is long enough that scheduler noise is
   small, and CI compares it with a generous tolerance.  Heap figures
   ride along: [top_heap_words] is the process-lifetime peak (a
   retention leak at scale shows up here as a step change), and the
   allocation rate is the GC-counter delta over the run. *)
let scale_throughput () =
  let stat0 = Gc.quick_stat () in
  let outcome, seconds =
    wall (fun () ->
        Harness.E17_scale.run_scale ~seed:17 ~n_isps:20 ~users_per_isp:500 ())
  in
  let stat1 = Gc.quick_stat () in
  let allocated =
    stat1.Gc.minor_words -. stat0.Gc.minor_words
    +. (stat1.Gc.major_words -. stat0.Gc.major_words)
    -. (stat1.Gc.promoted_words -. stat0.Gc.promoted_words)
  in
  let events = outcome.Harness.E17_scale.events in
  ( outcome.Harness.E17_scale.users,
    outcome.Harness.E17_scale.isps,
    events,
    seconds,
    allocated /. float_of_int events,
    (Gc.stat ()).Gc.top_heap_words )

(* §4.4 cross-check cost at federation scale: one full antisymmetry
   verify over an n x n reported matrix, the exact scan the bank runs
   per audit round.  Measured at n=100 and n=1000 so the committed
   baselines document how the per-round cost grows with the federation
   (the scan is O(n^2) pairs; the interesting number is the absolute
   per-round wall cost at the sizes E18/E17 actually audit). *)
let audit_verify_cost n =
  let rng = Sim.Rng.create 3 in
  let reported =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = j then 0 else Sim.Rng.int rng 100))
  in
  let () =
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        reported.(j).(i) <- -reported.(i).(j)
      done
    done
  in
  let compliant = Array.make n true in
  let iters = max 5 (2_000_000 / (n * n)) in
  let (), seconds =
    wall (fun () ->
        for _ = 1 to iters do
          ignore (Zmail.Credit.Audit.verify ~reported ~compliant)
        done)
  in
  seconds /. float_of_int iters *. 1e6

(* The same per-round scan on the sparse engine (lib/audit), at the
   constant average degree the representation targets: each ISP's row
   holds ~[degree] populated cells regardless of n, so verify cost
   follows populated cells, not n^2.  Dense rows at n=10^4 would need
   ~800 MB just to exist; the dense column above therefore stops at
   10^3 and the committed baselines document the sparse 10^3 -> 10^4
   cost ratio instead (the acceptance bar for the sparse engine is
   <= 15x, against ~100x for a dense O(n^2) scan).  Returns the
   per-round cost in microseconds and the accumulator's populated-cell
   count. *)
let sparse_audit_verify_cost n =
  let degree = 64 in
  let rng = Sim.Rng.create 5 in
  let rows = Array.init n (fun _ -> Audit.Row.create ~n) in
  for i = 0 to n - 1 do
    for k = 1 to degree / 2 do
      let j = (i + (k * 13)) mod n in
      if j <> i then begin
        let v = 1 + Sim.Rng.int rng 100 in
        Audit.Row.add rows.(i) j v;
        Audit.Row.add rows.(j) i (-v)
      end
    done
  done;
  let pairs = Array.map Audit.Row.pairs rows in
  let present = Array.make n true in
  let round () =
    let acc = Audit.Verify.create ~expected_cells:(n * degree) ~present () in
    Array.iteri
      (fun reporter row ->
        Array.iter
          (fun (peer, v) -> Audit.Verify.claim acc ~reporter ~peer v)
          row)
      pairs;
    ignore (Audit.Verify.violations acc);
    Audit.Verify.populated acc
  in
  let cells = round () in
  (* The sparse row runs after 21 experiment tables have churned the
     heap; compact first and average enough rounds that a single major
     collection cannot dominate the 10^4 measurement (3 rounds at the
     old budget swung the measured cost by 3x run-to-run). *)
  Gc.compact ();
  let iters = max 8 (4_000_000 / (n * degree)) in
  let (), seconds =
    wall (fun () ->
        for _ = 1 to iters do
          ignore (round ())
        done)
  in
  (seconds /. float_of_int iters *. 1e6, cells)

(* Inter-bank clearing cost: one full settlement round driven through
   [Zmail.Clearing] over a lossy mesh (10% drop, 20% delay), timed
   until the carry drains to zero.  Reported at 4 and 16 member banks
   so the baselines document how the settle wall cost and the wire
   message count (retransmissions included) grow with the federation.
   Wall time is simulation-driver cost, not simulated seconds. *)
let clearing_cost n_banks =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create (1900 + n_banks) in
  let fed =
    Zmail.Federation.create rng
      (Zmail.Federation.default_config ~n_banks ~n_isps:(2 * n_banks))
  in
  (* Deterministic drift: a cash ring with growing stakes, so every
     bank ends displaced from the mean and the plan is dense. *)
  for b = 0 to n_banks - 1 do
    Zmail.Federation.apply_transfer fed ~from_bank:b
      ~to_bank:((b + 1) mod n_banks)
      ~amount:(1000 * (b + 1))
  done;
  let mesh =
    Sim.Fault.Mesh.create
      ~default:(Sim.Fault.plan ~drop:0.10 ~delay_prob:0.20 ~delay_max:30. ())
      ~n_nodes:n_banks engine rng
  in
  let clearing =
    Zmail.Clearing.create ~retry_timeout:60. ~engine ~mesh fed
  in
  let (), seconds =
    wall (fun () ->
        ignore (Zmail.Clearing.settle_round clearing);
        Sim.Engine.run engine)
  in
  if Zmail.Clearing.pending_amount clearing <> 0 then
    failwith "bench: clearing carry did not drain";
  (seconds *. 1e3, Zmail.Clearing.messages clearing)

(* The serving path at bench scale: one E20 cell near the service knee
   (27 msg/s offered into 2-session lanes, calm mesh), timed end to
   end — concurrent sessions, admission queues and SLO histograms all
   on the hot path.  Like the e17_scale row: one run, generous CI
   tolerance.  The cell's own paid-class p99 (simulated seconds) rides
   along so baselines document the latency regime the row was timed
   in, but the CI gate compares only events/sec. *)
let latency_throughput () =
  let outcome, seconds =
    wall (fun () ->
        Harness.E20_serving.run_cell ~seed:20 ~label:"bench" ~rate:27.
          ~chaos:false ())
  in
  let paid_p99 =
    match
      List.assoc_opt Serve.Slo.Paid outcome.Harness.E20_serving.classes
    with
    | Some s -> s.Harness.E20_serving.p99
    | None -> nan
  in
  (outcome.Harness.E20_serving.events, seconds, paid_p99)

(* Snapshot write/read bandwidth over a populated world image. *)
let snapshot_io () =
  let world =
    Zmail.World.create
      {
        (Zmail.World.default_config ~n_isps:4 ~users_per_isp:100) with
        Zmail.World.seed = 12;
        audit_period = Some (12. *. Sim.Engine.hour);
      }
  in
  Zmail.World.attach_user_traffic world ();
  Zmail.World.run_days world 2.;
  let snap =
    Persist.Snapshot.v ~experiment:"bench" ~label:"" ~seed:12
      ~time:(Sim.Engine.now (Zmail.World.engine world))
      (Zmail.World.capture world)
  in
  let bytes = String.length (Persist.Snapshot.to_string snap) in
  let path = Filename.temp_file "zmail_bench" ".snap" in
  let iters = 200 in
  let (), write_s =
    wall (fun () ->
        for _ = 1 to iters do
          Persist.Snapshot.write_file ~path snap
        done)
  in
  let (), read_s =
    wall (fun () ->
        for _ = 1 to iters do
          match Persist.Snapshot.read_file ~path with
          | Ok _ -> ()
          | Error e -> failwith ("bench: snapshot read failed: " ^ e)
        done)
  in
  Sys.remove path;
  let mb_s seconds =
    float_of_int (bytes * iters) /. (1024. *. 1024.) /. seconds
  in
  (bytes, mb_s write_s, mb_s read_s)

(* Parworld stepped at 1, 2 and 4 domains (fresh build per count, same
   seed): the events/sec and speedups the multicore tentpole claims.
   The event count is asserted identical across domain counts — the
   bench doubles as a determinism check — and the speedups are honest
   wall-clock ratios: on a single-core runner they sit near 1.0, and
   the committed baseline documents whatever the recording machine
   actually delivered rather than an aspirational figure. *)
let domains_throughput () =
  let time d =
    let w =
      Zmail.Parworld.create
        {
          (Zmail.Parworld.default_config ~groups:4 ~isps_per_group:4
             ~users_per_isp:1500)
          with
          Zmail.Parworld.seed = 22;
        }
    in
    let (), seconds = wall (fun () -> Zmail.Parworld.run w ~domains:d) in
    (Zmail.Parworld.events_fired w, seconds)
  in
  let events, s1 = time 1 in
  let events2, s2 = time 2 in
  let events4, s4 = time 4 in
  if events <> events2 || events <> events4 then
    failwith "bench: engine.domains event counts diverged across domain counts";
  (events, s1, s2, s4)

(* Incremental snapshot capture: a 400-ISP world captured in full vs
   via [capture_incremental] with 1% of the ISPs re-dirtied between
   captures — the steady-state checkpointing regime the dirty tracking
   exists for: a wide world where most ISPs are quiet receivers and
   activity touches a few.  Sixteen funded bulk senders at the low
   indices fill mailboxes across all 400 ISPs; the re-dirtied 1% are
   ordinary receivers at the high indices, so the delta carries small
   sections while the clean 99% (the bulk of the bytes) is skipped.
   Byte sizes of the full snapshot and the 1%-dirty delta ride along
   so the baselines document the I/O saving too. *)
let snapshot_incremental () =
  let n_isps = 400 in
  let world =
    Zmail.World.create
      {
        (Zmail.World.default_config ~n_isps ~users_per_isp:2) with
        Zmail.World.seed = 12;
        audit_period = Some (12. *. Sim.Engine.hour);
        customize_isp =
          (fun _ c ->
            {
              c with
              Zmail.Isp.initial_balance = 1_000_000;
              daily_limit = max_int;
            });
      }
  in
  for k = 0 to 15 do
    Zmail.World.attach_bulk_sender world ~isp:k ~user:0 ~per_day:4000. ()
  done;
  Zmail.World.run_days world 1.;
  let time = Sim.Engine.now (Zmail.World.engine world) in
  let base =
    Persist.Snapshot.v ~experiment:"bench" ~label:"" ~seed:12 ~time
      (Zmail.World.capture world)
  in
  let full_bytes = String.length (Persist.Snapshot.to_string base) in
  (* Like the sparse-audit row: this runs after every experiment table
     has churned the heap, and a major collection landing inside the
     timed loop swamps the millisecond-scale capture being measured —
     compact first and average enough rounds to ride out the rest. *)
  Gc.compact ();
  let iters = 40 in
  let (), full_s =
    wall (fun () ->
        for _ = 1 to iters do
          ignore (Zmail.World.capture world)
        done)
  in
  (* The first incremental capture after a run is a full one (every
     ISP starts dirty); it also resets the dirty set, so the timed
     loop below measures the steady state. *)
  ignore (Zmail.World.capture_incremental world);
  let dirty = max 1 (n_isps / 100) in
  let redirty () =
    for k = 0 to dirty - 1 do
      Zmail.World.mark_isp_dirty world (n_isps - 1 - k)
    done
  in
  Gc.compact ();
  let (), incr_s =
    wall (fun () ->
        for _ = 1 to iters do
          redirty ();
          ignore (Zmail.World.capture_incremental world)
        done)
  in
  redirty ();
  let delta_bytes =
    match
      Persist.Snapshot.delta ~base ~experiment:"bench" ~label:"" ~seed:12
        ~time
        (Zmail.World.capture_incremental world)
    with
    | Ok d -> String.length (Persist.Snapshot.to_string d)
    | Error m -> failwith ("bench: snapshot delta: " ^ m)
  in
  ( n_isps,
    dirty,
    full_s /. float_of_int iters *. 1e3,
    incr_s /. float_of_int iters *. 1e3,
    full_bytes,
    delta_bytes )

(* WAL append throughput at the device level: frame + append with a
   flush every [group] records — the exact write path a disk-backed
   kernel drives per logged billing transition ({!Zmail.Isp}).
   Records/s at group 1 (the policy for money-moving records, which
   always flush) and group 8 (the default lazy batch), so the committed
   baselines document what group commit actually buys on the append
   path. *)
let wal_append_cost group =
  let d = Sim.Disk.create (Sim.Rng.create 31) in
  let payload = String.make 24 'r' in
  let n = 100_000 in
  let (), seconds =
    wall (fun () ->
        for k = 0 to n - 1 do
          Sim.Disk.append d (Persist.Wal.frame ~seq:k payload);
          if k mod group = group - 1 then Sim.Disk.flush d
        done;
        Sim.Disk.flush d)
  in
  float_of_int n /. seconds

(* WAL recovery cost vs log length: a disk-backed kernel is driven
   with paid sends and deliveries until its log holds [n] delta
   records, the log is frozen, and the full recovery — scan, checkpoint
   restore, replay, compaction — is timed by re-seeding the device with
   the frozen log each iteration ([recover_wal] compacts on success, so
   the log must be restored between runs).  Both lengths sit below the
   kernel's compaction threshold (512 deltas) because the log can never
   grow past it: compaction bounds replay, which is exactly what the
   baselines document.  Returns the recovery wall cost in ms and the
   delta-record count actually replayed. *)
let wal_recover_cost n =
  let rng = Sim.Rng.create 33 in
  let compliant = [| true; true |] in
  let bank =
    Zmail.Bank.create rng (Zmail.Bank.default_config ~n_isps:2 ~compliant)
  in
  let disk = Sim.Disk.create (Sim.Rng.create 34) in
  let isp =
    Zmail.Isp.create ~disk ~wal_group:1 rng
      { (Zmail.Isp.default_config ~index:0 ~n_isps:2 ~n_users:16 ~compliant
           ~bank_public:(Zmail.Bank.public_key bank))
        with
        Zmail.Isp.initial_balance = 1_000_000_000;
        daily_limit = max_int;
      }
  in
  let k = ref 0 in
  while Zmail.Isp.wal_appended isp < n do
    (if !k mod 2 = 0 then
       ignore (Zmail.Isp.charge_send isp ~sender:(!k mod 16) ~dest_isp:1)
     else ignore (Zmail.Isp.accept_delivery isp ~from_isp:1 ~rcpt:(!k mod 16)));
    incr k
  done;
  let log = Sim.Disk.contents disk in
  let iters = max 20 (20_000 / n) in
  let (), seconds =
    wall (fun () ->
        for _ = 1 to iters do
          Sim.Disk.reset_to disk log;
          match Zmail.Isp.recover_wal isp with
          | Ok () -> ()
          | Error e -> failwith ("bench: wal_recover: " ^ e)
        done)
  in
  (seconds /. float_of_int iters *. 1e3, Zmail.Isp.wal_replayed isp)

(* ISO-8601 UTC stamp embedded in the report, so tooling can order
   baselines by when they were recorded instead of by filename. *)
let iso8601_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let run_json ~path ~obs ~full =
  (* Experiment tables still go to stdout; the timings go to [path]. *)
  let experiments =
    List.map
      (fun e ->
        let id = e.Harness.Experiments.id in
        let (), seconds =
          wall (fun () ->
              match Harness.Experiments.run_one ~obs id with
              | Ok () -> ()
              | Error m -> failwith ("bench: " ^ id ^ ": " ^ m))
        in
        (id, seconds))
      Harness.Experiments.all
  in
  let events, engine_s = engine_throughput () in
  let scale_users, scale_isps, scale_events, scale_s, scale_alloc, peak_words =
    scale_throughput ()
  in
  let latency_events, latency_s, latency_paid_p99 = latency_throughput () in
  let snap_bytes, write_mb_s, read_mb_s = snapshot_io () in
  let dom_events, dom_s1, dom_s2, dom_s4 = domains_throughput () in
  let inc_isps, inc_dirty, inc_full_ms, inc_incr_ms, inc_full_b, inc_delta_b =
    snapshot_incremental ()
  in
  let verify_100_us = audit_verify_cost 100 in
  let verify_1000_us = audit_verify_cost 1000 in
  let sparse_1000_us, sparse_1000_cells = sparse_audit_verify_cost 1000 in
  let sparse_10000_us, sparse_10000_cells = sparse_audit_verify_cost 10_000 in
  let clear4_ms, clear4_msgs = clearing_cost 4 in
  let clear16_ms, clear16_msgs = clearing_cost 16 in
  let wal_g1_rps = wal_append_cost 1 in
  let wal_g8_rps = wal_append_cost 8 in
  let wal_rec_short_ms, wal_rec_short_n = wal_recover_cost 64 in
  let wal_rec_long_ms, wal_rec_long_n = wal_recover_cost 448 in
  (* Nightly-only long rows: the E17 million-user world and the E18
     adversary grid at 100 ISPs x 1000 users.  Minutes of wall-clock,
     so they only run under --full. *)
  let full_rows =
    if not full then None
    else begin
      let o17, e17_s =
        wall (fun () ->
            Harness.E17_scale.run_scale ~seed:17 ~n_isps:1000
              ~users_per_isp:1000 ())
      in
      let (), e18_s =
        wall (fun () -> ignore (Harness.E18_adversary.run ~seed:18 ~full:true ()))
      in
      Some (o17.Harness.E17_scale.events, e17_s, e18_s)
    end
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"schema\": 4,\n  \"generated_at\": \"%s\",\n\
      \  \"experiments\": [\n"
       (iso8601_now ()));
  List.iteri
    (fun k (id, seconds) ->
      Buffer.add_string b
        (Printf.sprintf "    { \"id\": \"%s\", \"wall_s\": %.6f }%s\n"
           (json_escape id) seconds
           (if k = List.length experiments - 1 then "" else ",")))
    experiments;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"engine\": { \"events\": %d, \"wall_s\": %.6f, \
        \"events_per_sec\": %.0f },\n"
       events engine_s
       (float_of_int events /. engine_s));
  Buffer.add_string b
    (Printf.sprintf
       "  \"e17_scale\": { \"users\": %d, \"isps\": %d, \"events\": %d, \
        \"wall_s\": %.6f, \"events_per_sec\": %.0f, \
        \"alloc_words_per_event\": %.1f, \"peak_heap_words\": %d },\n"
       scale_users scale_isps scale_events scale_s
       (float_of_int scale_events /. scale_s)
       scale_alloc peak_words);
  Buffer.add_string b
    (Printf.sprintf
       "  \"latency\": { \"events\": %d, \"wall_s\": %.6f, \
        \"events_per_sec\": %.0f, \"paid_p99_s\": %.3f },\n"
       latency_events latency_s
       (float_of_int latency_events /. latency_s)
       latency_paid_p99);
  Buffer.add_string b
    (Printf.sprintf
       "  \"audit_verify\": { \"n100_us_per_round\": %.2f, \
        \"n1000_us_per_round\": %.2f, \"sparse\": { \
        \"n1000_us_per_round\": %.2f, \"n10000_us_per_round\": %.2f, \
        \"n1000_cells\": %d, \"n10000_cells\": %d, \
        \"ratio_1000_to_10000\": %.2f } },\n"
       verify_100_us verify_1000_us sparse_1000_us sparse_10000_us
       sparse_1000_cells sparse_10000_cells
       (sparse_10000_us /. sparse_1000_us));
  Buffer.add_string b
    (Printf.sprintf
       "  \"clearing\": { \"banks4\": { \"settle_ms\": %.3f, \"messages\": \
        %d }, \"banks16\": { \"settle_ms\": %.3f, \"messages\": %d } },\n"
       clear4_ms clear4_msgs clear16_ms clear16_msgs);
  Buffer.add_string b
    (Printf.sprintf
       "  \"wal\": { \"append_g1_records_per_sec\": %.0f, \
        \"append_g8_records_per_sec\": %.0f, \"recover_short\": { \
        \"records\": %d, \"ms\": %.3f }, \"recover_long\": { \
        \"records\": %d, \"ms\": %.3f } },\n"
       wal_g1_rps wal_g8_rps wal_rec_short_n wal_rec_short_ms wal_rec_long_n
       wal_rec_long_ms);
  Buffer.add_string b
    (Printf.sprintf
       "  \"engine_domains\": { \"groups\": 4, \"events\": %d, \
        \"wall_s_1\": %.6f, \"wall_s_2\": %.6f, \"wall_s_4\": %.6f, \
        \"events_per_sec\": %.0f, \"speedup_2\": %.2f, \"speedup_4\": \
        %.2f, \"domains_available\": %b },\n"
       dom_events dom_s1 dom_s2 dom_s4
       (float_of_int dom_events /. dom_s1)
       (dom_s1 /. dom_s2) (dom_s1 /. dom_s4) Sim.Domainpool.available);
  Buffer.add_string b
    (Printf.sprintf
       "  \"snapshot_incremental\": { \"isps\": %d, \"dirty_isps\": %d, \
        \"full_ms\": %.3f, \"incr_ms\": %.3f, \"speedup\": %.2f, \
        \"full_bytes\": %d, \"delta_bytes\": %d },\n"
       inc_isps inc_dirty inc_full_ms inc_incr_ms
       (inc_full_ms /. inc_incr_ms)
       inc_full_b inc_delta_b);
  Buffer.add_string b
    (Printf.sprintf
       "  \"snapshot\": { \"bytes\": %d, \"write_mb_per_s\": %.2f, \
        \"read_mb_per_s\": %.2f }%s\n"
       snap_bytes write_mb_s read_mb_s
       (if full_rows = None then "" else ","));
  (match full_rows with
  | None -> ()
  | Some (e17_events, e17_s, e18_s) ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"full\": { \"e17_million\": { \"events\": %d, \"wall_s\": \
            %.2f, \"events_per_sec\": %.0f }, \"e18_full_grid\": { \
            \"wall_s\": %.2f } }\n"
           e17_events e17_s
           (float_of_int e17_events /. e17_s)
           e18_s));
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.eprintf "bench: wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-4s %s\n" e.Harness.Experiments.id e.Harness.Experiments.title)
    Harness.Experiments.all;
  print_endline "micro (E12: protocol micro-benchmarks)"

let usage =
  "usage: main.exe [e1..e23|micro|list] [--metrics] [--trace FILE] \
   [--trace-format jsonl|chrome] [--json FILE] [--full] \
   [--checkpoint-every T] [--snapshot FILE] [--resume FILE] [--stop-at T]"

let () =
  let trace = ref None in
  let trace_format = ref `Jsonl in
  let metrics = ref false in
  let json = ref None in
  let full = ref false in
  let checkpoint_every = ref None in
  let snapshot = ref None in
  let resume = ref None in
  let stop_at = ref None in
  let positional = ref [] in
  let float_arg name v =
    match float_of_string_opt v with
    | Some f -> f
    | None ->
        Printf.eprintf "%s: not a number: %s\n%s\n" name v usage;
        exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--trace-format" :: fmt :: rest ->
        (match fmt with
        | "jsonl" -> trace_format := `Jsonl
        | "chrome" -> trace_format := `Chrome
        | _ ->
            prerr_endline usage;
            exit 1);
        parse rest
    | "--metrics" :: rest ->
        metrics := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--checkpoint-every" :: v :: rest ->
        checkpoint_every := Some (float_arg "--checkpoint-every" v);
        parse rest
    | "--snapshot" :: path :: rest ->
        snapshot := Some path;
        parse rest
    | "--resume" :: path :: rest ->
        resume := Some path;
        parse rest
    | "--stop-at" :: v :: rest ->
        stop_at := Some (float_arg "--stop-at" v);
        parse rest
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let tracer =
    match !trace with
    | Some _ -> Some (Obs.Trace.create ~capacity:262_144 ())
    | None -> None
  in
  let obs = { Obs.Run.tracer; metrics = !metrics } in
  let export () =
    match (!trace, tracer) with
    | Some path, Some tr ->
        Obs.Export.write_file ~path ~format:!trace_format (Obs.Trace.events tr)
    | _ -> ()
  in
  let persist_requested =
    !checkpoint_every <> None || !snapshot <> None || !resume <> None
    || !stop_at <> None
  in
  match List.rev !positional with
  | [] when persist_requested ->
      prerr_endline
        "checkpoint/resume flags need a single experiment id";
      exit 1
  | [] -> (
      match !json with
      | Some path -> run_json ~path ~obs ~full:!full
      | None ->
          Harness.Experiments.run_all ~obs ();
          run_micro ();
          export ())
  | [ "micro" ] -> run_micro ()
  | [ "list" ] -> list_experiments ()
  | [ id ] -> (
      let outcome =
        try
          let persist =
            if persist_requested then
              Harness.Checkpoint.create ?checkpoint_every:!checkpoint_every
                ?snapshot:!snapshot ?resume:!resume ?stop_at:!stop_at
                ~experiment:(String.lowercase_ascii id) ()
            else Harness.Checkpoint.none
          in
          match Harness.Experiments.run_one ~obs ~persist id with
          | Ok () -> (
              match Harness.Checkpoint.finished persist with
              | Ok () -> `Done
              | Error m -> `Err ("checkpoint: " ^ m))
          | Error m -> `Err m
        with
        | Harness.Checkpoint.Stopped { time; file } -> `Stopped (time, file)
        | Invalid_argument m -> `Err m
      in
      match outcome with
      | `Done -> export ()
      | `Stopped (time, file) ->
          Printf.eprintf "checkpoint: run stopped at t=%.0f%s\n%!" time
            (match file with
            | Some f -> Printf.sprintf "; resume with --resume %s" f
            | None -> "")
      | `Err message ->
          prerr_endline message;
          exit 1)
  | _ ->
      prerr_endline usage;
      exit 1
