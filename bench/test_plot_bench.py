#!/usr/bin/env python3
"""Fixture tests for plot_bench.py (stdlib unittest, no deps).

Run with either of:
    python3 bench/test_plot_bench.py
    python3 -m unittest discover bench
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import plot_bench  # noqa: E402


def report(**overrides):
    """A minimal schema-4 report; overrides patch nested keys."""
    base = {
        "schema": 4,
        "generated_at": "2026-08-09T00:00:00Z",
        "engine": {"events_per_sec": 100000.0},
        "clearing": {
            "banks4": {"settle_ms": 1.0, "messages": 50},
            "banks16": {"settle_ms": 4.0, "messages": 400},
        },
        "engine_domains": {
            "events_per_sec": 400000.0,
            "speedup_2": 1.8,
            "speedup_4": 3.1,
        },
        "snapshot_incremental": {"speedup": 6.5},
        "wal": {
            "append_g1_records_per_sec": 900000.0,
            "append_g8_records_per_sec": 2500000.0,
            "recover_short": {"records": 64, "ms": 0.2},
            "recover_long": {"records": 448, "ms": 1.4},
        },
    }
    base.update(overrides)
    return base


class CellTest(unittest.TestCase):
    def test_missing_value(self):
        self.assertEqual(plot_bench.cell("{:d}", None, None), plot_bench.MISSING)

    def test_plain_value_no_previous(self):
        self.assertEqual(plot_bench.cell("{:d}", 7, None), "7")

    def test_percent_delta(self):
        self.assertEqual(plot_bench.cell("{:d}", 110, 100), "110 (+10.0%)")

    def test_zero_baseline_renders_missing_not_crash(self):
        # A 0-valued previous entry has no defined percent delta; the
        # old code either crashed (ZeroDivisionError) or silently
        # dropped the delta.  It must render MISSING.
        text = plot_bench.cell("{:d}", 42, 0)
        self.assertIn("MISSING", text)
        self.assertTrue(text.startswith("42"))

    def test_formatter_mismatch_falls_back_to_repr(self):
        self.assertEqual(plot_bench.cell("{:d}", 1.5, None), "1.5")


class SeriesTest(unittest.TestCase):
    def headers(self):
        return [name for name, _, _ in plot_bench.SERIES]

    def test_engine_domains_series_present(self):
        headers = self.headers()
        self.assertIn("domains ev/s", headers)
        self.assertIn("domains x2", headers)
        self.assertIn("domains x4", headers)

    def test_snapshot_incremental_series_present(self):
        self.assertIn("snap incr speedup", self.headers())

    def test_wal_series_present(self):
        headers = self.headers()
        self.assertIn("wal append g8 rec/s", headers)
        self.assertIn("wal recover ms", headers)

    def test_extract_reads_schema4_keys(self):
        values = dict(zip(self.headers(), plot_bench.extract(report())))
        self.assertEqual(values["wal append g8 rec/s"], 2500000.0)
        self.assertEqual(values["wal recover ms"], 1.4)

    def test_extract_reads_schema3_keys(self):
        values = dict(
            zip(self.headers(), plot_bench.extract(report()))
        )
        self.assertEqual(values["domains x2"], 1.8)
        self.assertEqual(values["snap incr speedup"], 6.5)

    def test_extract_tolerates_old_schema(self):
        values = dict(
            zip(self.headers(), plot_bench.extract({"schema": 1}))
        )
        self.assertIsNone(values["domains x2"])


class RenderTest(unittest.TestCase):
    def test_zero_baseline_row_renders(self):
        # First baseline records 0 messages (the counter series the
        # zero-baseline bug was about); the next row's delta against it
        # must render MISSING instead of raising ZeroDivisionError.
        first = report()
        first["clearing"]["banks4"]["messages"] = 0
        second = report()
        rows = [
            ("2026-08-01", plot_bench.extract(first)),
            ("2026-08-09", plot_bench.extract(second)),
        ]
        lines = plot_bench.render(rows)
        self.assertTrue(any("MISSING" in line for line in lines))
        # Header + separator + two baseline rows.
        self.assertEqual(len(lines), 4)

    def test_missing_series_renders_em_dash(self):
        rows = [("old", plot_bench.extract({"schema": 1}))]
        lines = plot_bench.render(rows)
        self.assertIn(plot_bench.MISSING, lines[2])


if __name__ == "__main__":
    unittest.main()
